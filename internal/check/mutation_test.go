// Mutation validation: the proof that the invariant layer actually catches
// bugs. Each test plants one deliberate, well-understood defect behind a
// Mutation flag, drives the same traffic with and without it, and requires
// that (a) the clean run raises no violations and (b) the mutated run trips
// the specific invariant the defect breaks. A checker that misses a planted
// defect cannot be trusted to catch an accidental one.

package check_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/dv"
	"repro/internal/dvswitch"
	"repro/internal/faultplan"
	"repro/internal/sim"
	"repro/internal/vic"
)

// hasInvariant reports whether the result contains a violation of one of
// the named invariants.
func hasInvariant(res *check.Result, names ...string) bool {
	for _, v := range res.Violations {
		for _, n := range names {
			if v.Invariant == n {
				return true
			}
		}
	}
	return false
}

// requireCaught asserts the clean run is silent and the mutated run trips
// one of the expected invariants.
func requireCaught(t *testing.T, clean, mutated *check.Result, invariants ...string) {
	t.Helper()
	if !clean.Ok() {
		t.Fatalf("clean run raised violations (rig is broken):\n%s", clean)
	}
	if mutated.Ok() {
		t.Fatalf("mutation escaped the checker entirely")
	}
	if !hasInvariant(mutated, invariants...) {
		t.Fatalf("mutation caught, but not by %v:\n%s", invariants, mutated)
	}
}

// ---------------------------------------------------------------------------
// Switch-core mutations: a bare core stepped directly, with the checker on
// both the per-cycle sweep and the inject/deliver boundary.

type switchRig struct {
	core   *dvswitch.Core
	chk    *check.Checker
	inject func(dvswitch.Packet)
}

func newSwitchRig(cfg *check.Config, mut dvswitch.Mutation) *switchRig {
	core := dvswitch.NewCore(dvswitch.Params{Heights: 4, Angles: 4})
	core.SetMutation(mut)
	chk := check.New(cfg)
	deliver := chk.WrapDeliver(func(dvswitch.Packet) {})
	core.Deliver = func(pkt dvswitch.Packet, cycle int64) { deliver(pkt) }
	chk.AttachCore(core)
	return &switchRig{core: core, chk: chk, inject: chk.WrapInject(core.Inject)}
}

// drive injects one packet per port per round toward pseudo-random
// destinations (heavy contention).
func (r *switchRig) drive(rounds int) {
	rng := sim.NewRNG(42)
	ports := r.core.Params().Ports()
	for round := 0; round < rounds; round++ {
		for port := 0; port < ports; port++ {
			dst := int(rng.Uint64() % uint64(ports))
			r.inject(dvswitch.Packet{Src: port, Dst: dst,
				Header: uint64(round)<<16 | uint64(port), Payload: rng.Uint64()})
		}
		r.core.Step()
	}
}

// drain steps the fabric until idle (bounded).
func (r *switchRig) drain() {
	for i := 0; r.core.Busy() && i < 20000; i++ {
		r.core.Step()
	}
}

func runSwitchMutation(mut dvswitch.Mutation, prep func(*switchRig)) (clean, mutated *check.Result) {
	for _, m := range []dvswitch.Mutation{0, mut} {
		rig := newSwitchRig(check.All(), m)
		if prep != nil {
			prep(rig)
		}
		rig.drive(200)
		rig.drain()
		res := rig.chk.Finalize()
		if m == 0 {
			clean = res
		} else {
			mutated = res
		}
	}
	return clean, mutated
}

func TestMutationDropDeflectSignal(t *testing.T) {
	clean, mutated := runSwitchMutation(dvswitch.MutDropDeflectSignal, nil)
	requireCaught(t, clean, mutated, "occupancy", "conservation", "lost")
}

func TestMutationBitOffByOne(t *testing.T) {
	clean, mutated := runSwitchMutation(dvswitch.MutBitOffByOne, nil)
	requireCaught(t, clean, mutated, "prefix")
}

func TestMutationSkipDropCount(t *testing.T) {
	// A dead output-ring node makes the fabric drop packets; the clean run
	// counts them (and stays conservation-clean), the mutated run loses them
	// silently.
	prep := func(r *switchRig) {
		L := r.core.Params().Cylinders() - 1
		r.core.SetFaulty(L, 0, 1, true)
	}
	clean, mutated := runSwitchMutation(dvswitch.MutSkipDropCount, prep)
	requireCaught(t, clean, mutated, "conservation")
}

func TestMutationDoubleDeliver(t *testing.T) {
	clean, mutated := runSwitchMutation(dvswitch.MutDoubleDeliver, nil)
	requireCaught(t, clean, mutated, "duplication")
}

func TestMutationStickyOutputRing(t *testing.T) {
	// Packets circle the output ring forever; a tight age bound must flag
	// them as livelocked within the bounded stepping.
	cfg := &check.Config{Switch: true, MaxAge: 64}
	var clean, mutated *check.Result
	for _, m := range []dvswitch.Mutation{0, dvswitch.MutStickyOutputRing} {
		rig := newSwitchRig(cfg, m)
		rig.drive(8)
		if m == 0 {
			// Drain the clean rig so finalize sees an empty fabric.
			rig.drain()
			clean = rig.chk.Finalize()
		} else {
			// The mutated fabric never drains; step a bounded horizon.
			for i := 0; i < 400; i++ {
				rig.core.Step()
			}
			mutated = rig.chk.Finalize()
		}
	}
	if !clean.Ok() {
		t.Fatalf("clean run raised violations (rig is broken):\n%s", clean)
	}
	if !hasInvariant(mutated, "livelock") {
		t.Fatalf("livelock not flagged:\n%s", mutated)
	}
}

// ---------------------------------------------------------------------------
// VIC mutations: two VICs over an immediate loopback "fabric".

type vicRig struct {
	k    *sim.Kernel
	vics []*vic.VIC
	chk  *check.Checker
}

func newVICRig(n int, mut vic.Mutation) *vicRig {
	k := sim.NewKernel()
	vics := make([]*vic.VIC, n)
	inject := func(pkt dvswitch.Packet) { vics[pkt.Dst].Receive(pkt) }
	chk := check.New(check.All())
	for i := range vics {
		vics[i] = vic.New(k, i, i, vic.DefaultParams(), inject)
		vics[i].SetMutation(mut)
		chk.AttachVIC(vics[i])
	}
	return &vicRig{k: k, vics: vics, chk: chk}
}

func runVICMutation(t *testing.T, mut vic.Mutation, body func(r *vicRig, p *sim.Proc)) (clean, mutated *check.Result) {
	t.Helper()
	for _, m := range []vic.Mutation{0, mut} {
		rig := newVICRig(2, m)
		rig.k.Spawn("host", func(p *sim.Proc) { body(rig, p) })
		rig.k.Run()
		res := rig.chk.Finalize()
		if m == 0 {
			clean = res
		} else {
			mutated = res
		}
	}
	return clean, mutated
}

func TestMutationGCDoubleDec(t *testing.T) {
	clean, mutated := runVICMutation(t, vic.MutGCDoubleDec, func(r *vicRig, p *sim.Proc) {
		// Arm counter 5 on VIC 1 for exactly one arrival, then decrement it
		// once from VIC 0: clean lands at 0, double-dec lands at -1.
		r.vics[1].LocalSetGC(p, 5, 1)
		r.vics[0].InjectDecGC(p, 1, 5)
	})
	requireCaught(t, clean, mutated, "gc-negative")
}

func TestMutationFIFODrainReorder(t *testing.T) {
	clean, mutated := runVICMutation(t, vic.MutFIFODrainReorder, func(r *vicRig, p *sim.Proc) {
		words := make([]vic.Word, 8)
		for i := range words {
			words[i] = vic.Word{Dst: 1, Op: vic.OpFIFO, GC: vic.NoGC, Val: uint64(100 + i)}
		}
		r.vics[0].HostSend(p, vic.PIO, words)
		for range words {
			if _, ok := r.vics[1].PopSurprise(p, sim.Forever); !ok {
				break
			}
		}
	})
	requireCaught(t, clean, mutated, "fifo-order")
}

func TestMutationUncountedBytes(t *testing.T) {
	clean, mutated := runVICMutation(t, vic.MutUncountedBytes, func(r *vicRig, p *sim.Proc) {
		words := make([]vic.Word, 16)
		for i := range words {
			words[i] = vic.Word{Dst: 1, Op: vic.OpWrite, GC: vic.NoGC,
				Addr: uint32(i), Val: uint64(i) + 1}
		}
		r.vics[0].HostSend(p, vic.DMACached, words)
	})
	requireCaught(t, clean, mutated, "pcie-bytes")
}

// ---------------------------------------------------------------------------
// Reliable-layer mutations: endpoints over a cycle-accurate engine, the
// same rig shape the dv package's own tests use.

type relRig struct {
	k    *sim.Kernel
	eps  []*dv.Endpoint
	vics []*vic.VIC
	chk  *check.Checker
}

func newRelRig(n int, mut dv.Mutation, plan *faultplan.Plan) *relRig {
	k := sim.NewKernel()
	eng := dvswitch.NewEngine(k, dvswitch.ForPorts(n), dvswitch.DefaultCycleTime)
	if plan != nil {
		eng.ApplyPlan(plan)
	}
	// Reliable invariants only: the engine's fault drops are intentional
	// here, so the switch-boundary accounting stays out of the way.
	chk := check.New(&check.Config{Reliable: true})
	rig := &relRig{k: k, chk: chk, eps: make([]*dv.Endpoint, n), vics: make([]*vic.VIC, n)}
	for i := 0; i < n; i++ {
		rig.vics[i] = vic.New(k, i, i, vic.DefaultParams(), eng.Inject)
		rig.vics[i].BarrierInit(n)
		rig.eps[i] = dv.NewEndpoint(rig.vics[i], i, n)
		rig.eps[i].SetMutation(mut)
		chk.AttachVIC(rig.vics[i])
		vics := rig.vics
		chk.BindEndpoint(rig.eps[i], func(dst int) *vic.VIC {
			if dst < 0 || dst >= len(vics) {
				return nil
			}
			return vics[dst]
		})
	}
	eng.OnDeliver(func(pkt dvswitch.Packet) { rig.vics[pkt.Dst].Receive(pkt) })
	return rig
}

func runRelMutation(t *testing.T, mut dv.Mutation, plan *faultplan.Plan, words int) (clean, mutated *check.Result, errs int) {
	t.Helper()
	for _, m := range []dv.Mutation{0, mut} {
		rig := newRelRig(2, m, plan)
		addr := rig.eps[0].Alloc(words)
		rig.eps[1].Alloc(words)
		vals := make([]uint64, words)
		for i := range vals {
			vals[i] = uint64(i)*2654435761 + 1
		}
		nerr := 0
		for _, e := range rig.eps {
			e := e
			rig.k.Spawn("node", func(p *sim.Proc) {
				e.Bind(p)
				if e.Rank() == 0 {
					if err := e.ReliableWrite(1, addr, vals); err != nil {
						nerr++
					}
				}
			})
		}
		rig.k.Run()
		res := rig.chk.Finalize()
		if m == 0 {
			clean = res
		} else {
			mutated, errs = res, nerr
		}
	}
	return clean, mutated, errs
}

func TestMutationSkipRetransmit(t *testing.T) {
	// A lossy fabric plus a verify pass that always reports success: words
	// the fabric dropped are reported delivered without ever landing.
	plan := &faultplan.Plan{Seed: 3, DropProb: 0.02}
	clean, mutated, errs := runRelMutation(t, dv.MutSkipRetransmit, plan, 2048)
	if errs != 0 {
		t.Fatalf("mutated run reported %d honest errors; the mutation should silence them", errs)
	}
	requireCaught(t, clean, mutated, "exactly-once")
}

func TestMutationSeqSkip(t *testing.T) {
	clean, mutated, _ := runRelMutation(t, dv.MutSeqSkip, nil, 2048)
	requireCaught(t, clean, mutated, "seq-monotone")
}
