package check

import (
	"repro/internal/dv"
	"repro/internal/vic"
)

// endpointID keys reliable-layer state by endpoint identity.
type endpointID = *dv.Endpoint

// endpointKey identifies one sender→destination sequence stream.
type endpointKey struct {
	e   endpointID
	dst int
}

// resolver maps a destination rank (within the endpoint's stack) to its VIC.
type resolver func(dstRank int) *vic.VIC

// BindEndpoint installs the checker on an endpoint's reliable layer.
// resolve maps a destination rank to its VIC so words reported delivered can
// be verified against the destination's write log; the destination VICs must
// also be attached (AttachVIC) or the log will be empty.
func (c *Checker) BindEndpoint(e *dv.Endpoint, resolve resolver) {
	if !c.cfg.Reliable {
		return
	}
	e.SetChecker(c)
	c.resolve[e] = resolve
}

// ChunkSeq implements dv.Checker: per-destination chunk sequence numbers
// must advance by exactly one per chunk — a skip means a lost chunk a
// receiver tracking sender progress would never detect, a repeat means a
// duplicated one.
func (c *Checker) ChunkSeq(e *dv.Endpoint, dst int, seq uint64) {
	if c.seqs == nil {
		return
	}
	k := endpointKey{e: e, dst: dst}
	if last := c.seqs[k]; seq != last+1 {
		c.violate("reliable", "seq-monotone", -1,
			"rank %d → %d: chunk sequence jumped %d → %d", e.Rank(), dst, last, seq)
	}
	c.seqs[k] = seq
}

// ChunkDone implements dv.Checker: a chunk the reliable layer reports
// delivered (err == nil) must have every word — data and sequence markers
// alike — present in its destination's write log. DV memory is
// last-writer-wins, so retransmitted duplicates are harmless and legal;
// what must never happen is a success report for a word that never arrived.
func (c *Checker) ChunkDone(e *dv.Endpoint, words []vic.Word, attempts int, err error) {
	if c.seqs == nil {
		return
	}
	c.res.ChunksChecked++
	if err != nil {
		// An honest failure report is not an invariant violation: the layer
		// detected the loss and said so.
		return
	}
	resolve := c.resolve[e]
	if resolve == nil {
		return
	}
	for _, w := range words {
		dstVIC := resolve(w.Dst)
		if dstVIC == nil {
			continue
		}
		s := c.state(dstVIC)
		if s.mem == nil || s.mem[memKey{addr: w.Addr, val: w.Val}] == 0 {
			c.violate("reliable", "exactly-once", -1,
				"rank %d → %d: word addr=%#x val=%#x reported delivered (attempt %d) but never written at destination",
				e.Rank(), w.Dst, w.Addr, w.Val, attempts)
		}
	}
}
