// Native fuzz targets for the invariant layer. Two properties are fuzzed:
//
//   - FuzzSwitchInvariants: arbitrary traffic and fault probabilities driven
//     through the sparse active-list stepper AND the dense full-fabric scan,
//     each under its own checker. Both runs must finish violation-free with
//     bit-identical telemetry — the differential oracle the sparse rewrite
//     is held to.
//   - FuzzReliableDelivery: a reliable write across a lossy cycle-accurate
//     fabric, with the exactly-once and sequence invariants on. Whatever
//     fate the fault RNG deals, the layer either delivers everything (and
//     destination memory proves it) or reports an honest error; the checker
//     must stay silent in both cases.
//
// The committed corpus under testdata/fuzz seeds the interesting regions:
// minimum geometry, saturating drop rates, chunk-boundary write sizes.

package check_test

import (
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/dv"
	"repro/internal/dvswitch"
	"repro/internal/faultplan"
	"repro/internal/sim"
	"repro/internal/vic"
)

// checkedCore builds one core (sparse or dense) with a full switch checker
// on the sweep and both boundaries.
type checkedCore struct {
	core   *dvswitch.Core
	chk    *check.Checker
	inject func(dvswitch.Packet)
}

func newCheckedCore(p dvswitch.Params, dense bool, faultSeed uint64, fp dvswitch.FaultProbs) *checkedCore {
	core := dvswitch.NewCore(p)
	core.Dense = dense
	if fp.Drop > 0 || fp.Corrupt > 0 {
		core.SetFaultProbs(fp, sim.NewRNG(faultSeed))
	}
	chk := check.New(&check.Config{Switch: true})
	deliver := chk.WrapDeliver(func(dvswitch.Packet) {})
	core.Deliver = func(pkt dvswitch.Packet, cycle int64) { deliver(pkt) }
	chk.AttachCore(core)
	return &checkedCore{core: core, chk: chk, inject: chk.WrapInject(core.Inject)}
}

func FuzzSwitchInvariants(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint8(2), float64(0), float64(0))
	f.Add(uint64(7), uint16(500), uint8(1), float64(0.05), float64(0))
	f.Add(uint64(9), uint16(64), uint8(0), float64(0), float64(0.2))
	f.Add(uint64(3), uint16(900), uint8(2), float64(0.3), float64(0.3))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, geom uint8, drop, corrupt float64) {
		if !(drop >= 0 && drop <= 1) || !(corrupt >= 0 && corrupt <= 1) {
			t.Skip()
		}
		// Odd angle count guarantees drainage (see FuzzCoreFaultDelivery in
		// dvswitch); heights sweep the minimum through a mid-size fabric.
		p := dvswitch.Params{Heights: 2 << (geom % 3), Angles: 5}
		fp := dvswitch.FaultProbs{Drop: drop, Corrupt: corrupt}
		sparse := newCheckedCore(p, false, seed+1, fp)
		dense := newCheckedCore(p, true, seed+1, fp)

		total := 20 + int(n)%1000
		rng := sim.NewRNG(seed)
		for i := 0; i < total; i++ {
			pkt := dvswitch.Packet{
				Src:     rng.Intn(p.Ports()),
				Dst:     rng.Intn(p.Ports()),
				Header:  uint64(i) + 1,
				Payload: rng.Uint64(),
			}
			sparse.inject(pkt)
			dense.inject(pkt)
			if i%2 == 0 {
				sparse.core.Step()
				dense.core.Step()
			}
		}
		sparse.core.RunUntilIdle(1 << 22)
		dense.core.RunUntilIdle(1 << 22)
		if sparse.core.Busy() || dense.core.Busy() {
			t.Fatal("fabric did not drain")
		}
		sres, dres := sparse.chk.Finalize(), dense.chk.Finalize()
		if err := sres.Err(); err != nil {
			t.Fatalf("sparse core violated invariants: %v", err)
		}
		if err := dres.Err(); err != nil {
			t.Fatalf("dense core violated invariants: %v", err)
		}
		if sst, dst := sparse.core.Stats(), dense.core.Stats(); !reflect.DeepEqual(sst, dst) {
			t.Fatalf("sparse/dense telemetry diverged:\nsparse: %+v\ndense:  %+v", sst, dst)
		}
		if sres.PacketsTracked != int64(total) {
			t.Fatalf("tracked %d packets, injected %d", sres.PacketsTracked, total)
		}
	})
}

func FuzzReliableDelivery(f *testing.F) {
	f.Add(uint64(1), uint16(256), float64(0.01), float64(0), uint8(0))
	f.Add(uint64(3), uint16(1024), float64(0.05), float64(0.02), uint8(3))
	f.Add(uint64(7), uint16(511), float64(0), float64(0.1), uint8(1))
	f.Add(uint64(9), uint16(513), float64(0.1), float64(0), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, nw uint16, drop, corrupt float64, chunkSel uint8) {
		if !(drop >= 0 && drop <= 0.3) || !(corrupt >= 0 && corrupt <= 0.3) {
			t.Skip() // beyond ~30% loss the retry budget honestly gives up
		}
		words := 16 + int(nw)%1024
		plan := &faultplan.Plan{Seed: seed + 1, DropProb: drop, CorruptProb: corrupt}
		if !plan.Active() {
			plan = nil
		}

		k := sim.NewKernel()
		eng := dvswitch.NewEngine(k, dvswitch.ForPorts(2), dvswitch.DefaultCycleTime)
		if plan != nil {
			eng.ApplyPlan(plan)
		}
		chk := check.New(&check.Config{Reliable: true})
		vics := make([]*vic.VIC, 2)
		eps := make([]*dv.Endpoint, 2)
		for i := range vics {
			vics[i] = vic.New(k, i, i, vic.DefaultParams(), eng.Inject)
			vics[i].BarrierInit(2)
			eps[i] = dv.NewEndpoint(vics[i], i, 2)
			opts := dv.DefaultReliableOpts()
			opts.ChunkWords = 64 << (chunkSel % 4) // 64..512
			eps[i].SetReliableOpts(opts)
			chk.AttachVIC(vics[i])
			chk.BindEndpoint(eps[i], func(dst int) *vic.VIC {
				if dst < 0 || dst >= len(vics) {
					return nil
				}
				return vics[dst]
			})
		}
		eng.OnDeliver(func(pkt dvswitch.Packet) { vics[pkt.Dst].Receive(pkt) })

		addr := eps[0].Alloc(words)
		eps[1].Alloc(words)
		vals := make([]uint64, words)
		rng := sim.NewRNG(seed)
		for i := range vals {
			vals[i] = rng.Uint64() | 1
		}
		var werr error
		k.Spawn("sender", func(p *sim.Proc) {
			eps[0].Bind(p)
			werr = eps[0].ReliableWrite(1, addr, vals)
		})
		k.Run()
		if res := chk.Finalize(); !res.Ok() {
			t.Fatalf("invariant violations (write err=%v):\n%s", werr, res)
		}
		if werr == nil {
			// Success report: destination memory must hold every word.
			for i, want := range vals {
				if got := vics[1].Peek(addr + uint32(i)); got != want {
					t.Fatalf("word %d: destination holds %#x, want %#x (reported success)", i, got, want)
				}
			}
		}
	})
}
