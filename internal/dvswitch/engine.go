package dvswitch

import (
	"fmt"

	"repro/internal/faultplan"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Fabric is the interface shared by the cycle-accurate engine and the fast
// analytic model. Injection happens at the caller's current virtual time;
// delivery is announced through the callback installed with OnDeliver.
type Fabric interface {
	// Ports returns the number of network ports.
	Ports() int
	// Inject submits a packet at the current virtual time.
	Inject(pkt Packet)
	// InjectBatch submits a whole boundary batch at the current virtual
	// time, in slice order — semantically identical to calling Inject per
	// element, but letting the fabric amortize per-call work (the engine
	// arms its pump once per batch instead of once per packet).
	InjectBatch(pkts []Packet)
	// OnDeliver installs the delivery callback (invoked in virtual time).
	OnDeliver(fn func(pkt Packet))
	// FabricStats returns aggregate telemetry.
	FabricStats() Stats
	// CycleTime returns the duration of one switch cycle.
	CycleTime() sim.Time
}

// DefaultCycleTime is the switch cycle period used throughout the
// reproduction. It is calibrated so that one port sustains the paper's
// 4.4 GB/s peak payload bandwidth: 8 payload bytes per cycle / 4.4 GB/s
// ≈ 1.818 ns per cycle.
const DefaultCycleTime = 1818 * sim.Picosecond

// Engine couples the cycle-accurate Core to a discrete-event kernel. The
// switch is stepped lazily: a pump event runs once per cycle only while
// packets are in flight, so an idle fabric costs nothing.
type Engine struct {
	k     *sim.Kernel
	core  *Core
	ct    sim.Time
	lane  int32
	fn    func(pkt Packet)
	armed bool
}

// NewEngine builds a kernel-coupled cycle-accurate switch. The pump is pinned
// to the kernel lane current at construction (the fabric lane, when the
// cluster wraps construction in WithLane), so pump events stay on the fabric's
// queue no matter which node's event arms them. The switch cycle is also the
// kernel's natural calendar grain; hint it so the event queue buckets align
// with cycle boundaries.
func NewEngine(k *sim.Kernel, p Params, cycleTime sim.Time) *Engine {
	k.HintTimeGrain(cycleTime)
	e := &Engine{k: k, core: NewCore(p), ct: cycleTime, lane: int32(k.CurrentLane())}
	e.core.Deliver = func(pkt Packet, _ int64) {
		if e.fn != nil {
			e.fn(pkt)
		}
	}
	return e
}

// Ports implements Fabric.
func (e *Engine) Ports() int { return e.core.p.Ports() }

// CycleTime implements Fabric.
func (e *Engine) CycleTime() sim.Time { return e.ct }

// FabricStats implements Fabric.
func (e *Engine) FabricStats() Stats { return e.core.Stats() }

// OnDeliver implements Fabric.
func (e *Engine) OnDeliver(fn func(pkt Packet)) { e.fn = fn }

// Inject implements Fabric. The packet is queued at its source port and the
// pump is armed at the next cycle boundary.
func (e *Engine) Inject(pkt Packet) {
	e.core.Inject(pkt)
	e.arm()
}

// InjectBatch implements Fabric: every packet is queued at its source port,
// then the pump is armed once.
func (e *Engine) InjectBatch(pkts []Packet) {
	e.core.InjectBatch(pkts)
	e.arm()
}

func (e *Engine) arm() {
	if e.armed {
		return
	}
	e.armed = true
	now := e.k.Now()
	next := (now/e.ct + 1) * e.ct // next cycle boundary, deterministic grid
	e.k.AtLane(int(e.lane), next, e.pump)
}

func (e *Engine) pump() {
	e.core.Step()
	if e.core.Busy() {
		e.k.After(e.ct, e.pump)
	} else {
		e.armed = false
	}
}

// FastModel is the analytic stand-in for Core, used for long application
// runs. It preserves the properties the paper's results rest on:
//
//   - injection is serialised at one packet per cycle per port (the VIC link);
//   - ejection is serialised at one packet per cycle per port;
//   - flight latency is pipeline descent + height-bit corrections + angle
//     circling, plus a contention term that grows with output-port backlog
//     (deflections cost two hops each, per the paper);
//   - there is no fabric-wide congestion: the Data Vortex is congestion-free
//     by construction, so only endpoint ports saturate.
//
// Its unloaded latency matches Core exactly (asserted by tests).
type FastModel struct {
	k   *sim.Kernel
	p   Params
	ct  sim.Time
	in  []sim.Pipe
	out []sim.Pipe
	rng *sim.RNG
	fn  func(pkt Packet)
	st  Stats
	obs *SwitchObs // registry-backed instruments (SetObs); nil when disabled

	// attr is the attribution tracer (SetAttr); nil when flow tracing is
	// disabled, costing one pointer test in Inject.
	attr *attr.Tracer

	// fpl/frng configure probabilistic per-packet faults (ApplyPlan):
	// the plan plus one independent RNG stream per source port.
	fpl  *faultplan.Plan
	frng []*sim.RNG

	// DropHook, when set, observes every packet lost to an injected fault,
	// mirroring Core.DropHook so the invariant layer (internal/check) can
	// account fabric losses on either engine.
	DropHook func(pkt Packet)

	// evFree pools delivery events so the Inject fast path schedules
	// without allocating a closure (and packet copy) per packet; lastEv is
	// the most recently scheduled, still-pending event, so a delivery burst
	// landing on one ejection deadline rides a single kernel event.
	evFree []*deliveryEvent
	lastEv *deliveryEvent

	// ftab memoises UnloadedFlightCycles per (src, dst): the function is
	// pure in the port pair, and profiling showed its bit-walk dominating
	// Inject. 0 means unset (a flight is never 0 cycles). nil when the
	// geometry is too large to tabulate (see NewFastModel).
	ftab   []int16
	nports int
}

// deliveryEvent is the pooled payload of one scheduled delivery batch: every
// packet whose ejection completes at the same virtual time, in injection
// order — which is exactly the order per-packet events with ascending
// sequence numbers would have fired, so batching is invisible in results.
type deliveryEvent struct {
	m    *FastModel
	done sim.Time
	pkts []Packet
	nows []sim.Time // per-packet injection times (latency accounting)
}

// fireDelivery completes one FastModel delivery batch and recycles its event.
// It is a package-level function (not a closure) so scheduling it via
// Kernel.AtArg carries only the pooled payload pointer.
func fireDelivery(a any) {
	ev := a.(*deliveryEvent)
	m := ev.m
	if m.lastEv == ev {
		m.lastEv = nil
	}
	for i := range ev.pkts {
		m.st.Delivered++
		lat := int64((ev.done - ev.nows[i]) / m.ct)
		m.st.recordLatency(lat)
		if m.obs != nil {
			m.obs.Delivered.Inc()
			m.obs.Latency.Observe(lat)
		}
		if m.fn != nil {
			m.fn(ev.pkts[i])
		}
	}
	clear(ev.pkts)
	ev.pkts = ev.pkts[:0]
	ev.nows = ev.nows[:0]
	m.evFree = append(m.evFree, ev)
}

// NewFastModel builds the analytic fabric model.
func NewFastModel(k *sim.Kernel, p Params, cycleTime sim.Time, rng *sim.RNG) *FastModel {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	k.HintTimeGrain(cycleTime)
	m := &FastModel{
		k:      k,
		p:      p,
		ct:     cycleTime,
		in:     make([]sim.Pipe, p.Ports()),
		out:    make([]sim.Pipe, p.Ports()),
		rng:    rng,
		nports: p.Ports(),
	}
	// Tabulate flight times unless the table would be large (quadratic in
	// ports) or a flight could overflow the int16 slot; big sweeps fall back
	// to computing per packet.
	if n := p.Ports(); n <= 2048 && 2*p.Cylinders()+p.Angles < 1<<15 {
		m.ftab = make([]int16, n*n)
	}
	return m
}

// flightCycles is UnloadedFlightCycles with per-(src, dst) memoisation.
func (m *FastModel) flightCycles(src, dst int) int64 {
	if m.ftab == nil {
		return UnloadedFlightCycles(m.p, src, dst)
	}
	i := src*m.nports + dst
	if v := m.ftab[i]; v != 0 {
		return int64(v)
	}
	v := UnloadedFlightCycles(m.p, src, dst)
	m.ftab[i] = int16(v)
	return v
}

// Ports implements Fabric.
func (m *FastModel) Ports() int { return m.p.Ports() }

// CycleTime implements Fabric.
func (m *FastModel) CycleTime() sim.Time { return m.ct }

// FabricStats implements Fabric.
func (m *FastModel) FabricStats() Stats { return m.st }

// OnDeliver implements Fabric.
func (m *FastModel) OnDeliver(fn func(pkt Packet)) { m.fn = fn }

// UnloadedFlightCycles returns the exact number of cycles an uncontended
// packet spends between entering the outermost cylinder and ejecting.
// Derivation (verified cycle-by-cycle against Core in tests): the packet
// performs one hop per level, plus one extra hop per destination-height bit
// it must correct, then circles the output ring to the destination angle and
// spends one final cycle ejecting.
func UnloadedFlightCycles(p Params, src, dst int) int64 {
	L := p.Cylinders() - 1
	sh, sa := p.PortCoord(src)
	dh, da := p.PortCoord(dst)
	hops := int64(0)
	h := sh
	for c := 0; c < L; c++ {
		bit := uint(L - 1 - c)
		if (h>>bit)&1 != (dh>>bit)&1 {
			h ^= 1 << bit
			hops++ // deflection hop to correct the bit
		}
		hops++ // descent hop
	}
	// Angle after the descent phase.
	a := (sa + int(hops)) % p.Angles
	circle := ((da-a)%p.Angles + p.Angles) % p.Angles
	return hops + int64(circle) + 1 // +1: ejection cycle
}

// Inject implements Fabric.
func (m *FastModel) Inject(pkt Packet) {
	if pkt.Src < 0 || pkt.Src >= m.p.Ports() || pkt.Dst < 0 || pkt.Dst >= m.p.Ports() {
		panic(fmt.Sprintf("dvswitch: port out of range: src=%d dst=%d ports=%d", pkt.Src, pkt.Dst, m.p.Ports()))
	}
	m.st.Injected++
	if m.obs != nil {
		m.obs.Injected.Inc()
	}
	now := m.k.Now()
	// Injection link: one packet per cycle per source port.
	entered := m.in[pkt.Src].Reserve(m.k, m.ct)
	// Contention: output backlog raises deflection probability. Each
	// deflection costs two hops (one to leave the path, one to return).
	// The clamp happens in integer time before the float conversion, and an
	// idle output port skips the float math entirely; both give bit-identical
	// pDefl (0.15*0/(0+8) is exactly 0).
	pDefl := 0.05
	if bl := m.out[pkt.Dst].BusyUntil() - now; bl > 0 {
		backlog := float64(bl) / float64(m.ct)
		pDefl = 0.05 + 0.15*backlog/(backlog+8)
	}
	defl := 0
	for m.rng.Float64() < pDefl && defl < 8 {
		defl++
	}
	flight := m.flightCycles(pkt.Src, pkt.Dst) + int64(2*defl)
	if m.fpl != nil && m.fpl.Window.Contains(now) {
		r := m.frng[pkt.Src]
		if m.fpl.DropProb > 0 && r.Float64() < compound(m.fpl.DropProb, flight) {
			m.st.Dropped++
			if m.obs != nil {
				m.obs.Dropped.Inc()
			}
			if m.attr != nil {
				m.attr.Drop(pkt.Flow)
			}
			if m.DropHook != nil {
				m.DropHook(pkt)
			}
			return
		}
		if m.fpl.CorruptProb > 0 && r.Float64() < compound(m.fpl.CorruptProb, flight) {
			pkt.Payload ^= 1 << (r.Uint64() & 63)
			pkt.Corrupt = true
			m.st.Corrupted++
		}
	}
	arrive := entered + sim.Time(flight)*m.ct
	// Ejection port: one packet per cycle.
	done := m.out[pkt.Dst].ReserveAt(arrive-m.ct, m.ct)
	pkt.Hops = int(flight)
	pkt.Deflections = defl
	m.st.TotalHops += flight
	m.st.TotalDeflected += int64(defl)
	if m.obs != nil {
		m.obs.Deflected.Add(int64(defl))
	}
	// Attribution: the packet's whole fabric life is determined here —
	// entered closes the injection wait, done closes the fabric stage.
	if m.attr != nil && pkt.Flow != 0 {
		m.attr.StampFabric(pkt.Flow, entered, done, int(flight), defl)
	}
	// Join the pending batch when this packet's ejection lands on the same
	// deadline as the last one scheduled; otherwise schedule a new batch
	// event. Deadlines are in the future, so a pending batch can always
	// still accept members.
	if le := m.lastEv; le != nil && le.done == done {
		le.pkts = append(le.pkts, pkt)
		le.nows = append(le.nows, now)
		return
	}
	var ev *deliveryEvent
	if n := len(m.evFree); n > 0 {
		ev = m.evFree[n-1]
		m.evFree = m.evFree[:n-1]
	} else {
		ev = &deliveryEvent{m: m}
	}
	ev.done = done
	ev.pkts = append(ev.pkts, pkt)
	ev.nows = append(ev.nows, now)
	m.lastEv = ev
	m.k.AtArg(done, fireDelivery, ev)
}

// InjectBatch implements Fabric. The fast model's per-packet work (pipe
// reservations, the shared contention RNG draw) is order-sensitive, so the
// batch is processed strictly in slice order — exactly what per-packet calls
// would do.
func (m *FastModel) InjectBatch(pkts []Packet) {
	for i := range pkts {
		m.Inject(pkts[i])
	}
}
