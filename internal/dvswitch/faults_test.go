package dvswitch

import (
	"testing"

	"repro/internal/faultplan"
	"repro/internal/sim"
)

// runFaultyCore injects n random packets into an 8×4 core with the given
// fault probabilities and drains it, returning the final stats.
func runFaultyCore(t *testing.T, fp FaultProbs, seed uint64, n int) Stats {
	t.Helper()
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	c.SetFaultProbs(fp, sim.NewRNG(seed))
	c.Deliver = func(Packet, int64) {}
	rng := sim.NewRNG(seed + 1)
	for i := 0; i < n; i++ {
		c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
		c.Step()
	}
	if c.RunUntilIdle(1 << 20); c.Busy() {
		t.Fatal("core did not drain")
	}
	return c.Stats()
}

func TestLinkFaultConservation(t *testing.T) {
	st := runFaultyCore(t, FaultProbs{Drop: 0.01, Corrupt: 0.01}, 3, 4000)
	if st.Injected != st.Delivered+st.Dropped {
		t.Fatalf("conservation: injected %d != delivered %d + dropped %d",
			st.Injected, st.Delivered, st.Dropped)
	}
	if st.Dropped == 0 {
		t.Error("expected some drops at 1%/hop")
	}
	if st.Corrupted == 0 {
		t.Error("expected some corruptions at 1%/hop")
	}
}

func TestLinkFaultWindow(t *testing.T) {
	// Faults confined to a window that has already closed: nothing drops.
	st := runFaultyCore(t, FaultProbs{Drop: 1, StartCycle: 0, EndCycle: 1}, 5, 500)
	// Cycle 0 carries no packets yet (injection fills nodes at the end of the
	// step), so a [0,1) full-drop window loses nothing.
	if st.Dropped != 0 {
		t.Fatalf("drops outside window: %d", st.Dropped)
	}
	st = runFaultyCore(t, FaultProbs{Drop: 1, StartCycle: 10}, 5, 500)
	if st.Delivered == 0 || st.Dropped == 0 {
		t.Fatalf("open-ended window from cycle 10: delivered %d dropped %d",
			st.Delivered, st.Dropped)
	}
}

func TestCorruptPacketsStillDeliver(t *testing.T) {
	// Corruption alone must not lose packets.
	st := runFaultyCore(t, FaultProbs{Corrupt: 0.05}, 9, 2000)
	if st.Dropped != 0 {
		t.Fatalf("corruption dropped %d packets", st.Dropped)
	}
	if st.Injected != st.Delivered {
		t.Fatalf("injected %d != delivered %d", st.Injected, st.Delivered)
	}
	if st.Corrupted == 0 {
		t.Error("expected corruptions at 5%/hop")
	}
}

func TestEngineApplyPlan(t *testing.T) {
	k := sim.NewKernel()
	p := Params{Heights: 8, Angles: 4}
	e := NewEngine(k, p, DefaultCycleTime)
	delivered := 0
	e.OnDeliver(func(Packet) { delivered++ })
	plan := &faultplan.Plan{
		Seed:     17,
		DropProb: 0.02,
		Window:   faultplan.Window{Start: 0},
		DeadNodes: []faultplan.DeadNode{
			{Cyl: 1, Height: 2, Angle: 1, Kill: 0},
			{Cyl: 99, Height: 0, Angle: 0, Kill: 0}, // outside geometry: ignored
		},
	}
	e.ApplyPlan(plan)
	rng := sim.NewRNG(1)
	k.Spawn("inject", func(proc *sim.Proc) {
		for i := 0; i < 2000; i++ {
			e.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
			proc.Wait(e.CycleTime())
		}
	})
	k.Run()
	st := e.FabricStats()
	if st.Injected != st.Delivered+st.Dropped {
		t.Fatalf("conservation: %+v", st)
	}
	if st.Dropped == 0 {
		t.Error("expected drops under plan")
	}
	if int64(delivered) != st.Delivered {
		t.Fatalf("callback count %d != Delivered %d", delivered, st.Delivered)
	}
}

func TestFastModelApplyPlanDeterministicDrops(t *testing.T) {
	run := func() Stats {
		k := sim.NewKernel()
		p := Params{Heights: 8, Angles: 4}
		m := NewFastModel(k, p, DefaultCycleTime, sim.NewRNG(2))
		m.OnDeliver(func(Packet) {})
		m.ApplyPlan(&faultplan.Plan{Seed: 23, DropProb: 5e-3, CorruptProb: 1e-3})
		rng := sim.NewRNG(4)
		k.Spawn("inject", func(proc *sim.Proc) {
			for i := 0; i < 3000; i++ {
				m.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
				proc.Wait(m.CycleTime())
			}
		})
		k.Run()
		return m.FabricStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fast-model fault runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Corrupted == 0 {
		t.Fatalf("expected drops and corruptions: %+v", a)
	}
	if a.Injected != a.Delivered+a.Dropped {
		t.Fatalf("conservation: %+v", a)
	}
}

// FuzzCoreFaultDelivery checks the exactly-once invariant under arbitrary
// fault probabilities and dead nodes: every injected packet is either
// delivered exactly once or counted in Dropped — never both, never neither.
func FuzzCoreFaultDelivery(f *testing.F) {
	f.Add(uint64(1), uint16(200), float64(0.01), float64(0.01), uint8(0))
	f.Add(uint64(7), uint16(500), float64(0.2), float64(0), uint8(3))
	f.Add(uint64(9), uint16(64), float64(0), float64(0.5), uint8(6))
	f.Add(uint64(3), uint16(300), float64(1), float64(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, drop, corrupt float64, dead uint8) {
		if !(drop >= 0 && drop <= 1) || !(corrupt >= 0 && corrupt <= 1) {
			t.Skip()
		}
		// Odd angle count: a deflecting packet alternates heights every hop,
		// so it attempts descent only at every second angle; with even A the
		// two dead nodes of matching parity livelock it forever — a real
		// property of the bufferless fabric, not an accounting bug. With
		// A = 5 the descent attempts sweep all angles, so drainage is
		// guaranteed as long as fewer than A dead nodes cover one height.
		p := Params{Heights: 8, Angles: 5}
		c := NewCore(p)
		rng := sim.NewRNG(seed)
		// Kill a few mid-fabric nodes (never cylinder 0: a dead entry node
		// blocks its injection port forever, a different failure class).
		for i := 0; i < int(dead%5); i++ {
			c.SetFaulty(1+rng.Intn(p.Cylinders()-1), rng.Intn(p.Heights), rng.Intn(p.Angles), true)
		}
		c.SetFaultProbs(FaultProbs{Drop: drop, Corrupt: corrupt}, sim.NewRNG(seed+1))
		seen := make(map[uint64]int)
		dropped := make(map[uint64]int)
		c.Deliver = func(pkt Packet, _ int64) { seen[pkt.Header]++ }
		c.DropHook = func(pkt Packet) { dropped[pkt.Header]++ }
		total := 50 + int(n)%1000
		for i := 0; i < total; i++ {
			c.Inject(Packet{
				Src:    rng.Intn(p.Ports()),
				Dst:    rng.Intn(p.Ports()),
				Header: uint64(i) + 1, // unique id per packet
			})
			if i%2 == 0 {
				c.Step()
			}
		}
		c.RunUntilIdle(1 << 22)
		if c.Busy() {
			t.Fatal("fabric did not drain")
		}
		for id := uint64(1); id <= uint64(total); id++ {
			s, d := seen[id], dropped[id]
			if s+d != 1 || s > 1 || d > 1 {
				t.Fatalf("packet %d: delivered %d times, dropped %d times", id, s, d)
			}
		}
		st := c.Stats()
		if st.Injected != int64(total) || st.Delivered != int64(len(seen)) ||
			st.Dropped != int64(len(dropped)) || st.Injected != st.Delivered+st.Dropped {
			t.Fatalf("stats inconsistent: %+v (seen %d dropped %d)", st, len(seen), len(dropped))
		}
	})
}
