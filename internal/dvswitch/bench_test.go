package dvswitch

import (
	"testing"

	"repro/internal/sim"
)

// benchCore builds a 32-port core whose Deliver keeps a fixed population of
// packets in flight by reinjecting every delivery. inFlight controls the
// steady-state occupancy: 2 packets ≈ 1% of the 160-node fabric (the sparse
// case), ports*4 keeps every injection queue busy (the saturated case).
func benchCore(b *testing.B, dense bool, inFlight int) *Core {
	b.Helper()
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	c.Dense = dense
	rng := sim.NewRNG(7)
	ports := p.Ports()
	c.Deliver = func(pkt Packet, _ int64) {
		c.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(ports)})
	}
	for i := 0; i < inFlight; i++ {
		c.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
	}
	// Warm up: reach steady state (pool and rings at final size) before the
	// timer starts, so the measured loop is allocation-free.
	for i := 0; i < 512; i++ {
		c.Step()
	}
	return c
}

// BenchmarkCoreStepSparse is the acceptance benchmark: 32-port switch at ~1%
// occupancy. The sparse active-list stepper must beat the dense full-fabric
// scan by >=3x here with 0 allocs/op.
func BenchmarkCoreStepSparse(b *testing.B) {
	c := benchCore(b, false, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Step()
	}
}

// BenchmarkCoreStepSparseDense is the committed dense baseline for the same
// 1%-occupancy workload (compare against BenchmarkCoreStepSparse).
func BenchmarkCoreStepSparseDense(b *testing.B) {
	c := benchCore(b, true, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Step()
	}
}

// BenchmarkCoreStepSaturated keeps every injection queue busy; sparse and
// dense should converge here (every node is occupied).
func BenchmarkCoreStepSaturated(b *testing.B) {
	c := benchCore(b, false, 32*4)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Step()
	}
}

// BenchmarkCoreStepSaturatedDense is the dense baseline at saturation.
func BenchmarkCoreStepSaturatedDense(b *testing.B) {
	c := benchCore(b, true, 32*4)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Step()
	}
}

// BenchmarkInjectDrain measures a full burst-and-drain: 512 packets injected
// then stepped to empty. Steady-state iterations reuse the pool and rings, so
// this must be allocation-free too.
func BenchmarkInjectDrain(b *testing.B) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	c.Deliver = func(Packet, int64) {}
	rng := sim.NewRNG(11)
	ports := p.Ports()
	burst := func() {
		for i := 0; i < 512; i++ {
			c.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
		}
		c.RunUntilIdle(1 << 20)
		if c.Busy() {
			b.Fatal("drain did not converge")
		}
	}
	// A burst can have at most 512 packets live at once, so prewarming to
	// that high-water mark makes every iteration provably allocation-free —
	// a warmup burst alone leaves the pool sized to the first burst's peak,
	// and a later RNG draw can exceed it.
	c.Prewarm(512)
	burst() // warm the RNG-independent scratch state too
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		burst()
	}
}

// BenchmarkFastModelInject measures the calibrated fast model's injection
// path; the pooled delivery events keep it at one steady-state alloc-free
// event per packet.
func BenchmarkFastModelInject(b *testing.B) {
	k := sim.NewKernel()
	m := NewFastModel(k, Params{Heights: 8, Angles: 4}, DefaultCycleTime, sim.NewRNG(3))
	m.OnDeliver(func(Packet) {})
	rng := sim.NewRNG(5)
	ports := m.Ports()
	// Warm up the event pool.
	for i := 0; i < 64; i++ {
		m.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
	}
	k.RunUntil(1 << 40)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := 0; i < 64; i++ {
			m.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
		}
		k.RunUntil(1 << 40)
	}
}

// BenchmarkFastModelInjectDeep is FastModelInject in the deep-queue regime
// that motivated the calendar event queue (ROADMAP item 5): a closed loop
// over a 128-port fabric keeps ~4k delivery events pending, the depth large
// runs (gups16 and up) actually reach. Per op = 1024 fired events, each of
// which re-injects, so the scheduler's push/pop pair at depth dominates.
func BenchmarkFastModelInjectDeep(b *testing.B) {
	k := sim.NewKernel()
	m := NewFastModel(k, Params{Heights: 32, Angles: 4}, DefaultCycleTime, sim.NewRNG(3))
	rng := sim.NewRNG(5)
	ports := m.Ports()
	m.OnDeliver(func(pkt Packet) {
		m.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(ports)})
	})
	for i := 0; i < 4096; i++ {
		m.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
	}
	// Reach steady state: pools, rings, and the calendar warm.
	k.RunUntilN(1<<40, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		k.RunUntilN(1<<40, 1024)
	}
}
