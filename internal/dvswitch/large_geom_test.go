package dvswitch

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestValidateGeometryBounds pins the MaxGeometryCells bound at its
// boundaries: geometries whose cell grid C×H×A fits the int32 index
// encodings validate, one step past fails with a typed *GeometryError.
func TestValidateGeometryBounds(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"min", Params{Heights: 1, Angles: 1}, true},
		{"paper", Params{Heights: 4, Angles: 8}, true},
		{"1024-port", Params{Heights: 128, Angles: 8}, true},
		{"under-bound", Params{Heights: 1 << 24, Angles: 2}, true}, // 25×2^25 cells
		{"over-bound", Params{Heights: 1 << 24, Angles: 3}, false}, // 25×3×2^24 cells
		{"at-bound", Params{Heights: 1, Angles: MaxGeometryCells}, true},
		{"past-bound", Params{Heights: 1, Angles: MaxGeometryCells + 1}, false},
		{"ports-over", Params{Heights: 2, Angles: MaxGeometryCells}, false},
		{"heights-over", Params{Heights: MaxGeometryCells * 2, Angles: 1}, false},
		{"not-pow2", Params{Heights: 3, Angles: 4}, false},
		{"no-angles", Params{Heights: 8, Angles: 0}, false},
	}
	for _, cse := range cases {
		err := cse.p.Validate()
		if cse.ok {
			if err != nil {
				t.Errorf("%s: Validate(%+v) = %v, want nil", cse.name, cse.p, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate(%+v) = nil, want error", cse.name, cse.p)
			continue
		}
		var ge *GeometryError
		if !errors.As(err, &ge) {
			t.Errorf("%s: Validate(%+v) error %T is not *GeometryError", cse.name, cse.p, err)
		} else if ge.Field == "" || ge.Reason == "" {
			t.Errorf("%s: GeometryError missing Field/Reason: %+v", cse.name, ge)
		}
	}
}

// TestLargeGeometryDifferential routes traffic through the corrected 256-
// and 1024-port geometries on all three steppers — sparse active-list,
// dense reference scan, and the fanned parStep — with per-cycle invariant
// sweeps enabled. Stats, event sequences, and cycle counts must agree
// exactly, proving the encodings and the fan scale to the larger grids.
func TestLargeGeometryDifferential(t *testing.T) {
	cycles := 120
	if testing.Short() {
		cycles = 40
	}
	for _, n := range []int{256, 1024} {
		p := ForPorts(n)
		t.Run(fmt.Sprintf("H%dA%d", p.Heights, p.Angles), func(t *testing.T) {
			run := func(mode string) (Stats, []diffEvent, int64) {
				c := NewCore(p)
				c.CheckInvariants = true
				switch mode {
				case "dense":
					c.Dense = true
				case "fan":
					pool := sim.NewFanPool(4)
					defer pool.Stop()
					c.SetFanPool(pool, -1) // fan every cycle regardless of occupancy
				}
				ev := driveDiffTraffic(c, "uniform", cycles, 42)
				return c.Stats(), ev, c.Cycle()
			}
			sSt, sEv, sCy := run("sparse")
			dSt, dEv, dCy := run("dense")
			fSt, fEv, fCy := run("fan")
			if sSt != dSt || sSt != fSt {
				t.Errorf("stats diverge:\nsparse: %+v\ndense:  %+v\nfan:    %+v", sSt, dSt, fSt)
			}
			if len(sEv) != len(dEv) || len(sEv) != len(fEv) {
				t.Fatalf("event counts diverge: sparse %d, dense %d, fan %d", len(sEv), len(dEv), len(fEv))
			}
			for i := range sEv {
				if sEv[i] != dEv[i] || sEv[i] != fEv[i] {
					t.Fatalf("event %d diverges:\nsparse: %+v\ndense:  %+v\nfan:    %+v",
						i, sEv[i], dEv[i], fEv[i])
				}
			}
			if sCy != dCy || sCy != fCy {
				t.Errorf("cycle counts diverge: sparse %d, dense %d, fan %d", sCy, dCy, fCy)
			}
			if sSt.Delivered == 0 {
				t.Error("large geometry delivered nothing; differential vacuous")
			}
		})
	}
}
