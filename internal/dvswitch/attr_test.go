package dvswitch

import (
	"testing"

	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// TestCoreStepZeroAllocWithAttrCompiledIn is the attribution half of the
// zero-cost claim: with the heat-census hook compiled into the deflection
// path but no census attached (the default), a steady-state Step performs
// zero allocations. The committed BENCH_core.json baseline bounds the time
// cost; this catches the allocation half without needing a quiet machine.
func TestCoreStepZeroAllocWithAttrCompiledIn(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	rng := sim.NewRNG(7)
	ports := p.Ports()
	c.Deliver = func(pkt Packet, _ int64) {
		c.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(ports)})
	}
	for i := 0; i < 2; i++ {
		c.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
	}
	for i := 0; i < 512; i++ {
		c.Step() // reach steady state: pool and rings at final size
	}
	if got := testing.AllocsPerRun(2000, func() { c.Step() }); got != 0 {
		t.Errorf("Step allocates %v times per op with attr disabled, want 0", got)
	}
}

// TestFastModelInjectZeroAllocWithAttrCompiledIn pins the same property for
// the analytic model's injection path: the attr seam is one pointer test
// when no tracer is attached.
func TestFastModelInjectZeroAllocWithAttrCompiledIn(t *testing.T) {
	k := sim.NewKernel()
	m := NewFastModel(k, Params{Heights: 8, Angles: 4}, DefaultCycleTime, sim.NewRNG(3))
	m.OnDeliver(func(Packet) {})
	rng := sim.NewRNG(5)
	ports := m.Ports()
	// Warm the pooled delivery events past the largest burst the measured
	// loop will issue (random destinations skew the in-flight peak), and
	// sweep virtual time across the scheduler's whole calendar ring several
	// times so every bucket has its high-water backing array.
	for w := 0; w < 512; w++ {
		for i := 0; i < 64; i++ {
			m.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
		}
		k.RunUntil(1 << 40)
	}
	got := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			m.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
		}
		k.RunUntil(1 << 40)
	})
	if got != 0 {
		t.Errorf("FastModel inject+drain allocates %v times per burst with attr disabled, want 0", got)
	}
}

// TestHeatCensusMatchesStats cross-checks the two deflection accountings:
// with the census attached, the summed heat cells must equal the stats
// counter once every packet has drained (both count deflection-path
// traversals; neither samples).
func TestHeatCensusMatchesStats(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	for _, dense := range []bool{false, true} {
		c := NewCore(p)
		c.Dense = dense
		c.Deliver = func(Packet, int64) {}
		h := &attr.Heat{Cylinders: p.Cylinders(), Angles: p.Angles,
			Cells: make([]int64, p.Cylinders()*p.Angles)}
		c.SetHeat(h)
		rng := sim.NewRNG(11)
		ports := p.Ports()
		for cy := 0; cy < 400; cy++ {
			for src := 0; src < ports; src++ {
				if rng.Float64() < 0.6 {
					c.Inject(Packet{Src: src, Dst: rng.Intn(ports)})
				}
			}
			c.Step()
		}
		c.RunUntilIdle(1 << 20)
		st := c.Stats()
		if st.TotalDeflected == 0 {
			t.Fatalf("dense=%v: no deflections at 0.6 load; traffic too light to test", dense)
		}
		if h.Total() != st.TotalDeflected {
			t.Errorf("dense=%v: heat census total %d != stats deflections %d",
				dense, h.Total(), st.TotalDeflected)
		}
	}
}
