// Checkpoint capture for both switch engines. Encodings are canonical: the
// occupancy grid is walked in dense-scan order and injection queues in
// ascending port order, never in pool-allocation or active-list order, so
// the sparse stepper and the dense reference scan — bit-identical in
// behavior — produce byte-identical state images too.

package dvswitch

import "repro/internal/snapshot"

func encodePacket(e *snapshot.Encoder, pkt Packet) {
	e.Int(pkt.Src)
	e.Int(pkt.Dst)
	e.U64(pkt.Header)
	e.U64(pkt.Payload)
	e.I64(pkt.InjectCycle)
	e.Int(pkt.Hops)
	e.Int(pkt.Deflections)
	e.Bool(pkt.Corrupt)
	e.U32(pkt.Flow)
}

func encodeStats(e *snapshot.Encoder, st Stats) {
	e.I64(st.Injected)
	e.I64(st.Delivered)
	e.I64(st.TotalHops)
	e.I64(st.TotalDeflected)
	e.I64(st.TotalLatency)
	e.I64(st.MaxLatency)
	e.I64(st.QueuedCycles)
	e.I64(st.Dropped)
	e.I64(st.Corrupted)
	for _, b := range st.LatHist {
		e.I64(b)
	}
}

// SnapshotTo serialises the core's complete mutable state: cycle counter,
// in-flight packets in dense fabric-scan order, injection rings in ascending
// port order, dead-node set, fault-probability window, fault-RNG stream
// position, and aggregate statistics. Scratch state (next-occupancy, signal
// flags, active list) is empty between Steps and derivable from the grid, so
// it is deliberately not captured.
func (c *Core) SnapshotTo(e *snapshot.Encoder) {
	e.I64(c.cycle)
	e.Int(c.flying)
	e.Int(c.queued)
	// In-flight packets, dense-scan order (cylinder, height, angle).
	occ := 0
	for _, ref := range c.grid {
		if ref != 0 {
			occ++
		}
	}
	e.U32(uint32(occ))
	for idx, ref := range c.grid {
		if ref != 0 {
			e.U32(uint32(idx))
			encodePacket(e, c.packetAt(ref))
		}
	}
	// Injection queues, ascending port order, FIFO order within a port.
	for port := range c.inq {
		q := &c.inq[port]
		e.U32(uint32(q.n))
		for i := 0; i < q.n; i++ {
			ref := q.buf[(q.head+i)&(len(q.buf)-1)]
			// Queued packets are read straight from the pool: Inject zeroed
			// their counters, and packetAt's derived hop count only applies
			// once a packet has been placed into the fabric.
			encodePacket(e, c.pool[ref-1])
		}
	}
	// Dead switching nodes (kill/revive schedules mutate this mid-run).
	dead := 0
	for _, f := range c.faulty {
		if f {
			dead++
		}
	}
	e.U32(uint32(dead))
	for idx, f := range c.faulty {
		if f {
			e.U32(uint32(idx))
		}
	}
	// Probabilistic fault configuration and stream position.
	e.F64(c.fp.Drop)
	e.F64(c.fp.Corrupt)
	e.I64(c.fp.StartCycle)
	e.I64(c.fp.EndCycle)
	e.Bool(c.frng != nil)
	if c.frng != nil {
		e.U64(c.frng.State())
	}
	encodeStats(e, c.stats)
}

// SnapshotTo serialises the engine: pump arming plus the full core image.
// The pending pump event itself lives in the kernel queue and is covered by
// the kernel section's fingerprint.
func (eng *Engine) SnapshotTo(e *snapshot.Encoder) {
	e.Bool(eng.armed)
	eng.core.SnapshotTo(e)
}

// SnapshotTo serialises the fast model: per-port injection/ejection link
// occupancy, the contention RNG position, every per-source-port fault stream
// position, and aggregate statistics. In-flight deliveries are kernel events
// (pooled payloads) and are covered by the kernel section's fingerprint.
func (m *FastModel) SnapshotTo(e *snapshot.Encoder) {
	for i := range m.in {
		e.Time(m.in[i].BusyUntil())
		e.Time(m.in[i].Busy)
	}
	for i := range m.out {
		e.Time(m.out[i].BusyUntil())
		e.Time(m.out[i].Busy)
	}
	e.U64(m.rng.State())
	e.U32(uint32(len(m.frng)))
	for _, r := range m.frng {
		e.U64(r.State())
	}
	encodeStats(e, m.st)
}
