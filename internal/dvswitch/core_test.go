package dvswitch

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Heights: 8, Angles: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{Heights: 3, Angles: 4}).Validate(); err == nil {
		t.Error("Heights=3 should be rejected")
	}
	if err := (Params{Heights: 8, Angles: 0}).Validate(); err == nil {
		t.Error("Angles=0 should be rejected")
	}
}

func TestCylinderScaling(t *testing.T) {
	// C = log2(H) + 1 per the paper.
	cases := []struct{ h, c int }{{1, 1}, {2, 2}, {4, 3}, {8, 4}, {16, 5}}
	for _, cse := range cases {
		if got := (Params{Heights: cse.h, Angles: 4}).Cylinders(); got != cse.c {
			t.Errorf("Cylinders(H=%d) = %d, want %d", cse.h, got, cse.c)
		}
	}
}

func TestForPorts(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 100, 128} {
		p := ForPorts(n)
		if p.Ports() < n {
			t.Errorf("ForPorts(%d) = %+v with only %d ports", n, p, p.Ports())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("ForPorts(%d) invalid: %v", n, err)
		}
	}
}

func TestPortCoordRoundTrip(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	for port := 0; port < p.Ports(); port++ {
		h, a := p.PortCoord(port)
		if p.PortIndex(h, a) != port {
			t.Fatalf("round trip failed for port %d", port)
		}
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	var got []Packet
	c.Deliver = func(pkt Packet, _ int64) { got = append(got, pkt) }
	c.Inject(Packet{Src: 0, Dst: 21, Payload: 0xdead})
	c.RunUntilIdle(1000)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if got[0].Dst != 21 || got[0].Payload != 0xdead {
		t.Fatalf("wrong packet delivered: %+v", got[0])
	}
}

// TestUnloadedLatencyMatchesFormula pins the analytic model to the
// cycle-accurate core: for every (src, dst) pair in a 32-port switch, a lone
// packet's measured latency must equal 1 (injection) + UnloadedFlightCycles.
func TestUnloadedLatencyMatchesFormula(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	for src := 0; src < p.Ports(); src++ {
		for dst := 0; dst < p.Ports(); dst++ {
			c := NewCore(p)
			var lat int64 = -1
			c.Deliver = func(pkt Packet, cycle int64) { lat = cycle - pkt.InjectCycle }
			c.Inject(Packet{Src: src, Dst: dst})
			c.RunUntilIdle(1000)
			want := 1 + UnloadedFlightCycles(p, src, dst)
			if lat != want {
				t.Fatalf("src=%d dst=%d: measured latency %d, formula %d", src, dst, lat, want)
			}
		}
	}
}

// TestAllDeliveredExactlyOnce floods the switch with random traffic and
// checks conservation: every packet is ejected exactly once, at its
// destination port, with payload intact.
func TestAllDeliveredExactlyOnce(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	rng := sim.NewRNG(99)
	const n = 20000
	seen := make(map[uint64]int)
	c.Deliver = func(pkt Packet, _ int64) {
		seen[pkt.Payload]++
		wantDst := int(pkt.Payload >> 32)
		if pkt.Dst != wantDst {
			t.Errorf("packet %x ejected at port %d, want %d", pkt.Payload, pkt.Dst, wantDst)
		}
	}
	for i := 0; i < n; i++ {
		src := rng.Intn(p.Ports())
		dst := rng.Intn(p.Ports())
		c.Inject(Packet{Src: src, Dst: dst, Payload: uint64(dst)<<32 | uint64(i)})
	}
	c.RunUntilIdle(1 << 20)
	if c.Busy() {
		t.Fatal("switch failed to drain")
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct packets, want %d", len(seen), n)
	}
	for pay, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("packet %x delivered %d times", pay, cnt)
		}
	}
	st := c.Stats()
	if st.Delivered != n || st.Injected != n {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDeliveryProperty is the quick-check version over random geometries and
// seeds.
func TestDeliveryProperty(t *testing.T) {
	check := func(seed uint64, hpow, aRaw uint8) bool {
		h := 1 << (hpow%4 + 1) // 2..16
		a := int(aRaw%6) + 1   // 1..6
		p := Params{Heights: h, Angles: a}
		c := NewCore(p)
		rng := sim.NewRNG(seed)
		const n = 500
		delivered := 0
		c.Deliver = func(pkt Packet, _ int64) {
			if int(pkt.Payload) != pkt.Dst {
				t.Errorf("misrouted: %+v", pkt)
			}
			delivered++
		}
		for i := 0; i < n; i++ {
			dst := rng.Intn(p.Ports())
			c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: dst, Payload: uint64(dst)})
		}
		c.RunUntilIdle(1 << 20)
		return delivered == n && !c.Busy()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestContentionDeflects sends two simultaneous packets to the same output
// port; both must arrive, the loser paying extra cycles, and no buffering is
// ever used (the core has no buffers by construction).
func TestContentionDeflects(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	var lats []int64
	c.Deliver = func(pkt Packet, cycle int64) { lats = append(lats, cycle-pkt.InjectCycle) }
	// Two sources at the same angle, different heights, one destination.
	c.Inject(Packet{Src: p.PortIndex(0, 0), Dst: p.PortIndex(5, 2)})
	c.Inject(Packet{Src: p.PortIndex(1, 0), Dst: p.PortIndex(5, 2)})
	c.RunUntilIdle(1000)
	if len(lats) != 2 {
		t.Fatalf("delivered %d, want 2", len(lats))
	}
	if lats[0] == lats[1] {
		t.Fatalf("same-port ejections in the same cycle: %v", lats)
	}
}

// TestHotspotDrains verifies the deflection fabric tolerates a many-to-one
// hotspot without deadlock or loss (the congestion-tolerance the paper
// attributes to the topology).
func TestHotspotDrains(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	delivered := 0
	c.Deliver = func(Packet, int64) { delivered++ }
	const perPort = 100
	hot := 13
	for src := 0; src < p.Ports(); src++ {
		for i := 0; i < perPort; i++ {
			c.Inject(Packet{Src: src, Dst: hot})
		}
	}
	cycles := c.RunUntilIdle(1 << 22)
	want := perPort * p.Ports()
	if delivered != want {
		t.Fatalf("delivered %d, want %d", delivered, want)
	}
	// The output port ejects at most one packet per cycle, so draining takes
	// at least `want` cycles; it should not take wildly more.
	if cycles < int64(want) {
		t.Fatalf("drained %d packets in %d cycles (impossible)", want, cycles)
	}
	if cycles > int64(want)*4 {
		t.Fatalf("hotspot drain took %d cycles for %d packets (too much churn)", cycles, want)
	}
}

// TestSaturationThroughput offers uniform random traffic at full injection
// rate and checks aggregate throughput stays near the port count (the
// "congestion-free" property: only endpoints limit).
func TestSaturationThroughput(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	rng := sim.NewRNG(7)
	delivered := 0
	c.Deliver = func(Packet, int64) { delivered++ }
	const cycles = 4000
	for cy := 0; cy < cycles; cy++ {
		for port := 0; port < p.Ports(); port++ {
			if c.QueueLen(port) < 4 {
				c.Inject(Packet{Src: port, Dst: rng.Intn(p.Ports())})
			}
		}
		c.Step()
	}
	rate := float64(delivered) / float64(cycles) / float64(p.Ports())
	// A fully-subscribed deflection network saturates well below port
	// capacity; real Data Vortex deployments over-provision heights.
	if rate < 0.2 {
		t.Fatalf("saturation throughput %.2f of peak, want >= 0.2", rate)
	}
}

// TestOverProvisionedThroughput uses only half the ports of a larger switch
// (the deployment style the vendor recommends) and expects much better
// per-endpoint throughput than the fully-subscribed case.
func TestOverProvisionedThroughput(t *testing.T) {
	p := Params{Heights: 16, Angles: 4} // 64 ports, 16 endpoints
	c := NewCore(p)
	rng := sim.NewRNG(7)
	delivered := 0
	c.Deliver = func(Packet, int64) { delivered++ }
	endpoints := make([]int, 16)
	for i := range endpoints {
		endpoints[i] = i * 4 // spread across heights
	}
	const cycles = 4000
	for cy := 0; cy < cycles; cy++ {
		for _, port := range endpoints {
			if c.QueueLen(port) < 4 {
				c.Inject(Packet{Src: port, Dst: endpoints[rng.Intn(len(endpoints))]})
			}
		}
		c.Step()
	}
	rate := float64(delivered) / float64(cycles) / float64(len(endpoints))
	if rate < 0.5 {
		t.Fatalf("over-provisioned throughput %.2f of peak, want >= 0.5", rate)
	}
}

// TestPrefixInvariantPerCycle turns on the core's per-cycle invariant
// checker under heavy random traffic: any deflection that un-resolved an
// already-routed height prefix would panic.
func TestPrefixInvariantPerCycle(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	c.CheckInvariants = true
	c.Deliver = func(Packet, int64) {}
	rng := sim.NewRNG(11)
	for i := 0; i < 3000; i++ {
		c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
	}
	c.RunUntilIdle(1 << 20)
	if c.Busy() {
		t.Fatal("failed to drain")
	}
}

// TestPrefixInvariant checks that deflections never un-resolve an
// already-routed height prefix: whenever a packet is ejected, it must be at
// exactly its destination (stronger checks happen inside routing, this is
// the end-to-end corollary exercised under heavy contention).
func TestPrefixInvariant(t *testing.T) {
	p := Params{Heights: 16, Angles: 2}
	c := NewCore(p)
	rng := sim.NewRNG(3)
	c.Deliver = func(pkt Packet, _ int64) {
		if int(pkt.Payload) != pkt.Dst {
			t.Fatalf("packet for %d ejected at %d", int(pkt.Payload), pkt.Dst)
		}
	}
	for i := 0; i < 5000; i++ {
		dst := rng.Intn(p.Ports())
		c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: dst, Payload: uint64(dst)})
	}
	c.RunUntilIdle(1 << 20)
}

func TestStatsAccounting(t *testing.T) {
	p := Params{Heights: 4, Angles: 2}
	c := NewCore(p)
	c.Deliver = func(Packet, int64) {}
	c.Inject(Packet{Src: 0, Dst: 5})
	c.Inject(Packet{Src: 1, Dst: 5})
	c.RunUntilIdle(1000)
	st := c.Stats()
	if st.Injected != 2 || st.Delivered != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanLatency() <= 0 {
		t.Fatalf("mean latency %f", st.MeanLatency())
	}
	if st.MaxLatency < int64(st.MeanLatency()) {
		t.Fatalf("max < mean: %+v", st)
	}
}

func TestTrivialGeometryH1(t *testing.T) {
	// H=1 degenerates to a single output ring: pure angle routing.
	p := Params{Heights: 1, Angles: 8}
	c := NewCore(p)
	delivered := 0
	c.Deliver = func(pkt Packet, _ int64) { delivered++ }
	for dst := 0; dst < 8; dst++ {
		c.Inject(Packet{Src: 0, Dst: dst})
	}
	c.RunUntilIdle(1000)
	if delivered != 8 {
		t.Fatalf("delivered %d, want 8", delivered)
	}
}

func TestInjectOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCore(Params{Heights: 4, Angles: 2})
	c.Inject(Packet{Src: 0, Dst: 99})
}

// TestNodeCountFormula pins the paper's §II scaling statement:
// N = A × H × (log2(H)+1) switching nodes for Nt = A×H ports.
func TestNodeCountFormula(t *testing.T) {
	for _, p := range []Params{{4, 2}, {8, 4}, {16, 4}, {32, 8}} {
		want := p.Angles * p.Heights * p.Cylinders()
		c := NewCore(p)
		if got := len(c.grid); got != want {
			t.Errorf("H=%d A=%d: %d switching nodes, want %d", p.Heights, p.Angles, got, want)
		}
	}
}

// TestPortFairness: under uniform saturation no input port starves.
func TestPortFairness(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	delivered := make([]int, p.Ports())
	c.Deliver = func(pkt Packet, _ int64) { delivered[pkt.Src]++ }
	rng := sim.NewRNG(5)
	for cy := 0; cy < 6000; cy++ {
		for port := 0; port < p.Ports(); port++ {
			if c.QueueLen(port) < 4 {
				c.Inject(Packet{Src: port, Dst: rng.Intn(p.Ports())})
			}
		}
		c.Step()
	}
	c.RunUntilIdle(1 << 22)
	min, max := delivered[0], delivered[0]
	for _, d := range delivered {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == 0 {
		t.Fatal("a port starved completely")
	}
	if float64(max)/float64(min) > 6 {
		t.Fatalf("gross unfairness: min %d max %d", min, max)
	}
}

// TestFaultInjectionRoutesAround: with a few dead inner nodes, most traffic
// still delivers (deflections route around), losses are counted exactly,
// and nothing is both delivered and dropped.
func TestFaultInjectionRoutesAround(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	delivered := 0
	c.Deliver = func(Packet, int64) { delivered++ }
	// Kill two mid-fabric nodes.
	c.SetFaulty(1, 3, 2, true)
	c.SetFaulty(2, 5, 1, true)
	rng := sim.NewRNG(12)
	const n = 5000
	for i := 0; i < n; i++ {
		c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
	}
	c.RunUntilIdle(1 << 22)
	st := c.Stats()
	if int(st.Delivered)+int(st.Dropped) != n {
		t.Fatalf("conservation: delivered %d + dropped %d != %d", st.Delivered, st.Dropped, n)
	}
	if st.Delivered != int64(delivered) {
		t.Fatalf("stats/callback mismatch")
	}
	frac := float64(st.Delivered) / float64(n)
	if frac < 0.90 {
		t.Fatalf("only %.2f delivered with 2 dead nodes; deflection rerouting missing", frac)
	}
	if st.Dropped == 0 {
		t.Log("no drops observed (rerouting covered everything)")
	}
}

// TestFaultRepair: repairing the node restores loss-free delivery.
func TestFaultRepair(t *testing.T) {
	p := Params{Heights: 4, Angles: 2}
	c := NewCore(p)
	c.Deliver = func(Packet, int64) {}
	c.SetFaulty(1, 1, 1, true)
	c.SetFaulty(1, 1, 1, false) // repaired
	rng := sim.NewRNG(3)
	for i := 0; i < 1000; i++ {
		c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
	}
	c.RunUntilIdle(1 << 20)
	if st := c.Stats(); st.Dropped != 0 || st.Delivered != 1000 {
		t.Fatalf("after repair: %+v", st)
	}
}

// TestDeadInjectionPortBlocks: a dead entry node parks its port's queue
// rather than corrupting the fabric.
func TestDeadInjectionPortBlocks(t *testing.T) {
	p := Params{Heights: 4, Angles: 2}
	c := NewCore(p)
	c.Deliver = func(Packet, int64) {}
	h, a := p.PortCoord(3)
	c.SetFaulty(0, h, a, true)
	c.Inject(Packet{Src: 3, Dst: 0})
	c.RunUntilIdle(1000)
	if !c.Busy() {
		t.Fatal("packet should still be queued at the dead port")
	}
	if c.QueueLen(3) != 1 {
		t.Fatalf("queue length %d", c.QueueLen(3))
	}
}

// TestLatencyPercentileMonotone: percentiles are ordered and bounded.
func TestLatencyPercentileMonotone(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	c.Deliver = func(Packet, int64) {}
	rng := sim.NewRNG(9)
	for i := 0; i < 3000; i++ {
		c.Inject(Packet{Src: rng.Intn(p.Ports()), Dst: rng.Intn(p.Ports())})
	}
	c.RunUntilIdle(1 << 20)
	st := c.Stats()
	p50, p90, p99 := st.LatencyPercentile(50), st.LatencyPercentile(90), st.LatencyPercentile(99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("percentiles not monotone: %d %d %d", p50, p90, p99)
	}
	if p99 > 4*st.MaxLatency {
		t.Fatalf("p99 bound %d vs max %d", p99, st.MaxLatency)
	}
}

// TestForPortsEdgeGeometries pins the corner geometries of ForPorts: n=1,
// n=3, assorted non-power-of-two port counts, and the large radixes
// (64/256/1024) the scaling studies run at. Every geometry must be valid,
// sufficiently large, satisfy the paper's A >= C = log2(H)+1 construction,
// and actually route traffic: small cases run full all-to-all, large ones a
// set of port permutations so every port both sends and receives.
func TestForPortsEdgeGeometries(t *testing.T) {
	cases := []struct {
		n            int
		wantH, wantA int
	}{
		{1, 1, 1},
		{2, 1, 2},
		{3, 1, 3},
		{4, 1, 4},
		{5, 2, 3},
		{6, 2, 3},
		{7, 2, 4},
		{9, 4, 3},
		{33, 8, 5},
		{64, 8, 8},
		{100, 16, 7},
		{256, 32, 8},
		{1024, 128, 8},
	}
	for _, cse := range cases {
		p := ForPorts(cse.n)
		if p.Heights != cse.wantH || p.Angles != cse.wantA {
			t.Errorf("ForPorts(%d) = %+v, want {%d %d}", cse.n, p, cse.wantH, cse.wantA)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("ForPorts(%d) invalid: %v", cse.n, err)
		}
		if p.Ports() < cse.n {
			t.Errorf("ForPorts(%d) has only %d ports", cse.n, p.Ports())
		}
		if c := p.Cylinders(); p.Angles < c {
			t.Errorf("ForPorts(%d) = %+v: Angles < Cylinders (%d)", cse.n, p, c)
		}
		nt := p.Ports()
		c := NewCore(p)
		delivered := 0
		c.Deliver = func(pkt Packet, _ int64) {
			if int(pkt.Payload) != pkt.Dst {
				t.Errorf("ForPorts(%d): misrouted %+v", cse.n, pkt)
			}
			delivered++
		}
		want := 0
		if nt <= 64 {
			// Small geometries deliver full all-to-all.
			for src := 0; src < nt; src++ {
				for dst := 0; dst < nt; dst++ {
					c.Inject(Packet{Src: src, Dst: dst, Payload: uint64(dst)})
				}
			}
			want = nt * nt
		} else {
			// Large geometries: shifted permutations — every port sends to,
			// and receives from, several distinct partners.
			for _, shift := range []int{1, nt/2 + 1, nt - 3} {
				for src := 0; src < nt; src++ {
					dst := (src + shift) % nt
					c.Inject(Packet{Src: src, Dst: dst, Payload: uint64(dst)})
				}
			}
			want = 3 * nt
		}
		c.RunUntilIdle(1 << 22)
		if delivered != want {
			t.Errorf("ForPorts(%d): delivered %d of %d", cse.n, delivered, want)
		}
	}
}

// TestLatencyHistogramBuckets pins recordLatency's log2 bucketing at the
// boundaries: bucket i counts latencies in [2^i, 2^(i+1)).
func TestLatencyHistogramBuckets(t *testing.T) {
	var s Stats
	for _, lat := range []int64{1, 2, 3, 4, 7, 8, 1 << 20} {
		s.recordLatency(lat)
	}
	want := map[int]int64{0: 1, 1: 2, 2: 2, 3: 1, 20: 1}
	for i, cnt := range s.LatHist {
		if cnt != want[i] {
			t.Errorf("LatHist[%d] = %d, want %d", i, cnt, want[i])
		}
	}
	// Sub-cycle latencies clamp into bucket 0; absurd ones into the last.
	var s2 Stats
	s2.recordLatency(0)
	s2.recordLatency(1 << 62)
	if s2.LatHist[0] != 1 || s2.LatHist[len(s2.LatHist)-1] != 1 {
		t.Errorf("clamping failed: %v", s2.LatHist)
	}
	if s2.MaxLatency != 1<<62 {
		t.Errorf("MaxLatency = %d", s2.MaxLatency)
	}
}

// TestLatencyPercentileBucketBoundaries pins LatencyPercentile's bucket
// arithmetic: the returned value is the upper boundary 2^(i+1) of the first
// bucket that covers the target rank.
func TestLatencyPercentileBucketBoundaries(t *testing.T) {
	var s Stats
	// 90 packets at latency 1 (bucket 0), 10 at latency 8 (bucket 3).
	for i := 0; i < 90; i++ {
		s.recordLatency(1)
	}
	for i := 0; i < 10; i++ {
		s.recordLatency(8)
	}
	s.Delivered = 100
	s.MaxLatency = 8
	cases := []struct {
		p    float64
		want int64
	}{
		{1, 2},    // rank 1 is in bucket 0 -> boundary 2
		{90, 2},   // rank 90 still bucket 0
		{91, 16},  // rank 91 falls into bucket 3 -> boundary 16
		{100, 16}, // rank 100 likewise
		{0.1, 2},  // tiny p clamps the target rank to 1
	}
	for _, cse := range cases {
		if got := s.LatencyPercentile(cse.p); got != cse.want {
			t.Errorf("LatencyPercentile(%v) = %d, want %d", cse.p, got, cse.want)
		}
	}
	// No deliveries: falls through to MaxLatency (zero value).
	var empty Stats
	if got := empty.LatencyPercentile(99); got != 0 {
		t.Errorf("empty LatencyPercentile = %d, want 0", got)
	}
}
