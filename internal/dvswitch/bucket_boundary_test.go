package dvswitch

// Boundary audit for the log2 latency buckets: dvswitch.Stats.LatHist and
// obs.Histogram implement the same bucket math independently ("bucket i
// counts values in [2^i, 2^(i+1))"); the table below pins the assignment at
// every power-of-two boundary so the two can never drift apart, and so an
// off-by-one in either (bits.Len vs bits.Len-1, inclusive vs exclusive
// upper edge) fails loudly.

import (
	"testing"

	"repro/internal/obs"
)

// bucketOf returns the LatHist bucket a single recorded latency lands in.
func bucketOf(t *testing.T, v int64) int {
	t.Helper()
	var s Stats
	s.recordLatency(v)
	got := -1
	for i, c := range s.LatHist {
		if c == 1 && got == -1 {
			got = i
		} else if c != 0 {
			t.Fatalf("recordLatency(%d): multiple buckets touched", v)
		}
	}
	if got == -1 {
		t.Fatalf("recordLatency(%d): no bucket touched", v)
	}
	return got
}

// obsBucketOf returns the obs.Histogram bucket a single observation lands in.
func obsBucketOf(t *testing.T, v int64) int {
	t.Helper()
	h := obs.NewRegistry().Histogram("b")
	h.Observe(v)
	got := -1
	for i := 0; i < obs.HistBuckets; i++ {
		if h.Bucket(i) == 1 && got == -1 {
			got = i
		} else if h.Bucket(i) != 0 {
			t.Fatalf("Observe(%d): multiple buckets touched", v)
		}
	}
	if got == -1 {
		t.Fatalf("Observe(%d): no bucket touched", v)
	}
	return got
}

func TestLog2BucketBoundaries(t *testing.T) {
	if len(Stats{}.LatHist) != obs.HistBuckets {
		t.Fatalf("Stats.LatHist has %d buckets, obs.HistBuckets = %d",
			len(Stats{}.LatHist), obs.HistBuckets)
	}
	type tc struct {
		v    int64
		want int // bucket i covers [2^i, 2^(i+1))
	}
	cases := []tc{
		{0, 0}, // clamped to 1
		{1, 0},
		{2, 1},
		{3, 1},
	}
	for _, k := range []uint{2, 3, 7, 16, 31, 38} {
		cases = append(cases,
			tc{int64(1)<<k - 1, int(k) - 1},
			tc{int64(1) << k, int(k)},
			tc{int64(1)<<k + 1, int(k)},
		)
	}
	// At and beyond the top boundary everything lands in the last bucket.
	cases = append(cases,
		tc{int64(1) << 39, obs.HistBuckets - 1},
		tc{int64(1)<<39 + 1, obs.HistBuckets - 1},
		tc{int64(1) << 45, obs.HistBuckets - 1},
	)
	for _, c := range cases {
		if got := bucketOf(t, c.v); got != c.want {
			t.Errorf("Stats bucket(%d) = %d, want %d", c.v, got, c.want)
		}
		if got := obsBucketOf(t, c.v); got != c.want {
			t.Errorf("obs bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestLog2PercentileAgreement pins that the two percentile estimators return
// the same bucket-boundary bound for the same observations, including at
// exact powers of two.
func TestLog2PercentileAgreement(t *testing.T) {
	// This test pins bit-agreement with Stats.LatencyPercentile, which
	// reports bucket upper bounds; use the histogram's legacy estimate.
	defer func(old bool) { obs.InterpolateQuantiles = old }(obs.InterpolateQuantiles)
	obs.InterpolateQuantiles = false

	vals := []int64{1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 1023, 1024, 1025}
	var s Stats
	h := obs.NewRegistry().Histogram("p")
	for _, v := range vals {
		s.Delivered++
		s.recordLatency(v)
		h.Observe(v)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 100} {
		sp := s.LatencyPercentile(p)
		hp := h.Percentile(p)
		if sp != hp {
			t.Errorf("p%v: Stats %d, obs %d", p, sp, hp)
		}
	}
}
