package dvswitch

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// goldenObsRun drives uniform random traffic through a Core with instruments
// attached, returning both accounting paths for the same events.
func goldenObsRun() (Stats, *obs.Registry) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	reg := obs.NewRegistry()
	c.SetObs(reg)
	c.Deliver = func(Packet, int64) {}
	rng := sim.NewRNG(42)
	for cy := 0; cy < 2000; cy++ {
		for port := 0; port < p.Ports(); port++ {
			if c.QueueLen(port) < 4 && rng.Float64() < 0.6 {
				c.Inject(Packet{Src: port, Dst: int(rng.Uint64() % uint64(p.Ports()))})
			}
		}
		c.Step()
	}
	c.RunUntilIdle(1 << 20)
	return c.Stats(), reg
}

// TestObsMatchesStats pins the contract that the obs instruments are a second
// view of the exact same events Stats counts — same increments, same log2
// bucket math — so LatencyPercentile and MeanDeflections computed from either
// path agree on a golden run.
func TestObsMatchesStats(t *testing.T) {
	// This test pins bit-agreement with Stats.LatencyPercentile, which
	// reports bucket upper bounds; use the histogram's legacy estimate.
	defer func(old bool) { obs.InterpolateQuantiles = old }(obs.InterpolateQuantiles)
	obs.InterpolateQuantiles = false

	st, reg := goldenObsRun()
	if st.Delivered == 0 || st.TotalDeflected == 0 {
		t.Fatalf("degenerate golden run: %+v", st)
	}

	for name, want := range map[string]int64{
		"switch_injected_total":  st.Injected,
		"switch_delivered_total": st.Delivered,
		"switch_dropped_total":   st.Dropped,
		"switch_deflected_total": st.TotalDeflected,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}

	// MeanDeflections from counters must reproduce Stats.MeanDeflections.
	mean := float64(reg.CounterValue("switch_deflected_total")) /
		float64(reg.CounterValue("switch_delivered_total"))
	if got := st.MeanDeflections(); got != mean {
		t.Errorf("MeanDeflections: Stats %v, counters %v", got, mean)
	}

	// The histogram observed every eject latency with the same bucket math as
	// Stats.LatHist, so every percentile lands on the same bucket boundary.
	h := reg.Histogram("switch_latency_cycles")
	if h.Count() != st.Delivered {
		t.Fatalf("histogram count %d, delivered %d", h.Count(), st.Delivered)
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		if sp, hp := st.LatencyPercentile(p), h.Percentile(p); sp != hp {
			t.Errorf("p%v: Stats %d, obs histogram %d", p, sp, hp)
		}
	}

	// Bucket-by-bucket the histograms are identical.
	for i, want := range st.LatHist {
		if got := h.Bucket(i); got != want {
			t.Errorf("bucket %d: obs %d, Stats %d", i, got, want)
		}
	}

	// Per-cylinder deflection counters partition the total.
	var byCyl int64
	for cl := 0; cl < (Params{Heights: 8, Angles: 4}).Cylinders(); cl++ {
		byCyl += reg.CounterValue(fmt.Sprintf("switch_deflected_cyl%d_total", cl))
	}
	if byCyl != st.TotalDeflected {
		t.Errorf("per-cylinder sum %d, total %d", byCyl, st.TotalDeflected)
	}
}

// TestObsNilIsFree checks a Core without instruments behaves identically to
// one with them: same Stats from the same seeded traffic, and detaching works.
func TestObsNilIsFree(t *testing.T) {
	run := func(attach bool) Stats {
		p := Params{Heights: 4, Angles: 3}
		c := NewCore(p)
		if attach {
			c.SetObs(obs.NewRegistry())
		}
		c.Deliver = func(Packet, int64) {}
		rng := sim.NewRNG(9)
		for cy := 0; cy < 500; cy++ {
			for port := 0; port < p.Ports(); port++ {
				if c.QueueLen(port) < 4 && rng.Float64() < 0.5 {
					c.Inject(Packet{Src: port, Dst: int(rng.Uint64() % uint64(p.Ports()))})
				}
			}
			c.Step()
		}
		c.RunUntilIdle(1 << 20)
		return c.Stats()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("instruments changed results:\nwithout: %+v\nwith:    %+v", a, b)
	}
}

// TestCoreStepZeroAllocWithObsCompiledIn is the CI smoke for the zero-cost
// claim: with the obs hooks compiled into the hot path but no instruments
// attached (the default), a steady-state Step performs zero allocations. The
// committed BENCH_core.json baseline additionally bounds the time cost; this
// test catches the allocation half without needing a quiet machine.
func TestCoreStepZeroAllocWithObsCompiledIn(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	c := NewCore(p)
	rng := sim.NewRNG(7)
	ports := p.Ports()
	c.Deliver = func(pkt Packet, _ int64) {
		c.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(ports)})
	}
	for i := 0; i < 2; i++ {
		c.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
	}
	for i := 0; i < 512; i++ {
		c.Step() // reach steady state: pool and rings at final size
	}
	if got := testing.AllocsPerRun(2000, func() { c.Step() }); got != 0 {
		t.Errorf("Step allocates %v times per op with obs disabled, want 0", got)
	}
}

// TestFastModelObsMatchesStats pins the same two-path equality for the
// analytic model, which accounts deflections in bulk at injection time.
func TestFastModelObsMatchesStats(t *testing.T) {
	// This test pins bit-agreement with Stats.LatencyPercentile, which
	// reports bucket upper bounds; use the histogram's legacy estimate.
	defer func(old bool) { obs.InterpolateQuantiles = old }(obs.InterpolateQuantiles)
	obs.InterpolateQuantiles = false

	k := sim.NewKernel()
	p := Params{Heights: 8, Angles: 4}
	m := NewFastModel(k, p, 2*sim.Nanosecond, sim.NewRNG(17))
	reg := obs.NewRegistry()
	m.SetObs(reg)
	delivered := 0
	m.OnDeliver(func(Packet) { delivered++ })
	rng := sim.NewRNG(3)
	for i := 0; i < 400; i++ {
		src := int(rng.Uint64() % uint64(p.Ports()))
		dst := int(rng.Uint64() % uint64(p.Ports()))
		m.Inject(Packet{Src: src, Dst: dst})
	}
	k.Run()
	st := m.FabricStats()
	if int64(delivered) != st.Delivered {
		t.Fatalf("delivered %d, stats %d", delivered, st.Delivered)
	}
	if got := reg.CounterValue("switch_delivered_total"); got != st.Delivered {
		t.Errorf("delivered counter %d, Stats %d", got, st.Delivered)
	}
	if got := reg.CounterValue("switch_deflected_total"); got != st.TotalDeflected {
		t.Errorf("deflected counter %d, Stats %d", got, st.TotalDeflected)
	}
	h := reg.Histogram("switch_latency_cycles")
	for _, pc := range []float64{50, 90, 99, 100} {
		if sp, hp := st.LatencyPercentile(pc), h.Percentile(pc); sp != hp {
			t.Errorf("p%v: Stats %d, obs histogram %d", pc, sp, hp)
		}
	}
}
