package dvswitch

import (
	"repro/internal/sim"
)

// Parallel stepping. parStep fans the clean-path move phase across a
// sim.FanPool, one cylinder pass at a time, and is bit-identical to the
// serial Step at any worker count:
//
//   - Within one cylinder pass, move targets are pairwise distinct (circling
//     and deflection are injective on (height, angle); descend targets land
//     in the next cylinder, also injectively), so workers write next[] and
//     per-packet flight state with no two writers on one element.
//   - Cross-pass collisions are excluded by the deflection-signal protocol
//     itself — a descend is blocked when its target cell was claimed in the
//     previous pass — provided each pass observes the previous pass's merged
//     signals. Workers therefore accumulate signal and occupancy bits in
//     per-worker local bitmaps, OR-merged into the shared masks between
//     barriers (each worker merges a disjoint word range, so the merge is
//     parallel too and the OR order is irrelevant).
//   - Ejects are order-sensitive (stats, Deliver callbacks, packet-pool
//     reuse, re-injection), so workers only collect candidate refs in chunk
//     order; participant 0 applies them serially in ascending-cell order —
//     exactly the dense-scan order the serial path produces — while the
//     other participants merge the output ring's signal words.
//
// The result: same next occupancy, same signal set, same eject/Deliver
// sequence, same stats, same pool-reference reuse as the serial clean path,
// for any pool width. The lockstep differential tests and the sparse/dense
// goldens enforce this.

// DefaultParMinFlying is the occupancy below which parStep is not worth its
// barriers: a fan costs a few microseconds of handoff and spin per cycle,
// which only amortizes once the per-cycle move work is comparable. Runs on
// reference-size fabrics rarely cross it; 256-port-and-up saturated fabrics
// do.
const DefaultParMinFlying = 2048

// parState is the per-core scratch for parallel stepping.
type parState struct {
	pool      *sim.FanPool
	minFlying int
	nxt       [][]uint64 // per-worker local nxtMask accumulators
	sig       [][]uint64 // per-worker local sigMask accumulators
	ej        [][]int32  // per-worker eject candidates, chunk order
}

// SetFanPool attaches (or, with nil, detaches) a worker pool for parallel
// stepping. minFlying is the occupancy gate: cycles with fewer in-flight
// packets run the serial path (0 selects DefaultParMinFlying; negative
// forces every cycle parallel, which the differential tests use). The
// parallel path engages only on clean-path cycles (no faults, mutations, or
// per-event instruments) of the sparse stepper; everything else — and any
// run with a width-1 pool — is the unchanged serial code.
func (c *Core) SetFanPool(p *sim.FanPool, minFlying int) {
	if p == nil || p.Workers() <= 1 {
		c.par = nil
		return
	}
	if minFlying == 0 {
		minFlying = DefaultParMinFlying
	}
	w := p.Workers()
	ps := &parState{pool: p, minFlying: minFlying}
	ps.nxt = make([][]uint64, w)
	ps.sig = make([][]uint64, w)
	ps.ej = make([][]int32, w)
	for i := 0; i < w; i++ {
		ps.nxt[i] = make([]uint64, len(c.nxtMask))
		ps.sig[i] = make([]uint64, len(c.sigMask))
	}
	c.par = ps
}

// parEligible reports whether this cycle takes the parallel path.
func (c *Core) parEligible() bool {
	return c.par != nil && !c.Dense &&
		(c.flying >= c.par.minFlying || c.par.minFlying < 0) &&
		c.cleanPath()
}

// mergeClear ORs the word range [lo, hi) of every local bitmap into dst,
// split W ways by participant id so merge work is parallel, and clears the
// merged local words.
func mergeClear(dst []uint64, locals [][]uint64, lo, hi, id, parts int) {
	span := hi - lo
	mlo := lo + span*id/parts
	mhi := lo + span*(id+1)/parts
	for w := mlo; w < mhi; w++ {
		v := uint64(0)
		for p := range locals {
			if x := locals[p][w]; x != 0 {
				v |= x
				locals[p][w] = 0
			}
		}
		if v != 0 {
			dst[w] |= v
		}
	}
}

// parStep is Step's clean-path move phase fanned across the pool, followed
// by the usual serial inject phase and step finish.
func (c *Core) parStep() {
	ps := c.par
	L := c.levels
	cylN := c.cylN
	sigStride := (cylN + 63) / 64
	ps.pool.Run(func(fc *sim.FanCtx) {
		id, W := fc.ID(), fc.Parts()
		lo := cylN * id / W
		hi := cylN * (id + 1) / W
		grid := c.grid
		next := c.next
		tab := c.tab
		pstate := c.pstate
		lnxt := ps.nxt[id]
		lsig := ps.sig[id]
		ej := ps.ej[id][:0]
		// Output ring (cylinder L): eject at the destination angle (deferred
		// to the serial section below), else circle.
		base := L * cylN
		for j := lo; j < hi; j++ {
			ref := grid[base+j]
			if ref == 0 {
				continue
			}
			t := &tab[base+j]
			if pstate[ref-1].da == t.da {
				ej = append(ej, ref)
				continue
			}
			ni := t.next
			next[ni] = ref
			lnxt[ni>>6] |= 1 << (uint32(ni) & 63)
			ns := t.nextSig
			lsig[ns>>6] |= 1 << (uint32(ns) & 63)
		}
		ps.ej[id] = ej
		fc.Barrier()
		// Participant 0 applies ejects in ascending-cell order (Deliver may
		// re-inject and grow the packet pool); the rest merge cylinder L's
		// signal words, which ejecting never touches.
		if id == 0 {
			for w := 0; w < W; w++ {
				for _, ref := range ps.ej[w] {
					c.eject(ref)
				}
				ps.ej[w] = ps.ej[w][:0]
			}
		} else {
			mergeClear(c.sigMask, ps.sig, L*sigStride, (L+1)*sigStride, id-1, W-1)
		}
		fc.Barrier()
		pstate = c.pstate // Deliver may have re-injected and grown the pool
		// Inner cylinders: descend or deflect, branchless, reading the
		// previous pass's merged signals.
		for cl := L - 1; cl >= 0; cl-- {
			base := cl * cylN
			for j := lo; j < hi; j++ {
				ref := grid[base+j]
				if ref == 0 {
					continue
				}
				t := &tab[base+j]
				f := &pstate[ref-1]
				d := t.desc
				ds := t.descSig
				blocked := uint64((f.dh>>t.bit)&1^t.hbit) | c.sigMask[ds>>6]>>(uint32(ds)&63)&1
				ni := t.defl
				if blocked == 0 {
					ni = d
				}
				f.defl += uint32(blocked)
				next[ni] = ref
				lnxt[ni>>6] |= 1 << (uint32(ni) & 63)
				fs := t.deflSig
				lsig[fs>>6] |= blocked << (uint32(fs) & 63)
			}
			fc.Barrier()
			mergeClear(c.sigMask, ps.sig, cl*sigStride, (cl+1)*sigStride, id, W)
			fc.Barrier()
		}
		// Publish the next-occupancy bitmap; Run's join orders this before
		// the serial inject phase.
		mergeClear(c.nxtMask, ps.nxt, 0, len(c.nxtMask), id, W)
	})
	c.injectPhase()
	c.finishStep()
}
