package dvswitch

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// The golden differential tests: the sparse active-list Step must be
// bit-identical to the dense full-fabric scan (the seed implementation,
// kept as denseStep) — same Stats, same delivery sequence, same drop
// sequence, same fault-RNG consumption — over uniform, hotspot, and faulty
// traffic. CI runs these under -race as well.

// diffEvent is one observable core event (delivery or drop) in order.
type diffEvent struct {
	pkt   Packet
	cycle int64
	drop  bool
}

// driveDiffTraffic runs one synthetic scenario on c and returns the ordered
// event sequence. Injection decisions depend only on the scenario's RNG and
// the core's queue depths, so two bit-identical cores see identical input.
func driveDiffTraffic(c *Core, scenario string, cycles int, seed uint64) []diffEvent {
	var events []diffEvent
	c.Deliver = func(pkt Packet, cycle int64) {
		events = append(events, diffEvent{pkt: pkt, cycle: cycle})
	}
	c.DropHook = func(pkt Packet) {
		events = append(events, diffEvent{pkt: pkt, drop: true, cycle: c.Cycle()})
	}
	p := c.Params()
	ports := p.Ports()
	switch scenario {
	case "faulty":
		// Dead mid-fabric nodes plus probabilistic link faults: exercises
		// drop paths, corruption draws, and the fault-RNG stream order.
		frng := sim.NewRNG(seed * 77)
		for k := 0; k < 3 && p.Cylinders() > 1; k++ {
			cl := 1 + frng.Intn(p.Cylinders()-1)
			c.SetFaulty(cl, frng.Intn(p.Heights), frng.Intn(p.Angles), true)
		}
		c.SetFaultProbs(FaultProbs{Drop: 2e-3, Corrupt: 1e-3, StartCycle: 10},
			sim.NewRNG(seed*13))
	}
	rng := sim.NewRNG(seed)
	id := uint64(0)
	for cy := 0; cy < cycles; cy++ {
		for src := 0; src < ports; src++ {
			if rng.Float64() >= 0.4 || c.QueueLen(src) > 6 {
				continue
			}
			dst := rng.Intn(ports)
			if scenario == "hotspot" && rng.Float64() < 0.3 {
				dst = ports / 3
			}
			id++
			c.Inject(Packet{Src: src, Dst: dst, Header: id, Payload: id * 3})
		}
		c.Step()
	}
	c.RunUntilIdle(1 << 22)
	return events
}

// TestDifferentialDenseVsSparse is the golden test: for every scenario and a
// couple of geometries, the dense and sparse cores must produce identical
// Stats structs and identical event sequences.
func TestDifferentialDenseVsSparse(t *testing.T) {
	geoms := []Params{{Heights: 8, Angles: 4}, {Heights: 4, Angles: 3}, {Heights: 1, Angles: 5}}
	cycles := 3000
	if testing.Short() {
		cycles = 800
	}
	for _, geom := range geoms {
		for _, scenario := range []string{"uniform", "hotspot", "faulty"} {
			t.Run(fmt.Sprintf("%s/H%dA%d", scenario, geom.Heights, geom.Angles), func(t *testing.T) {
				dense := NewCore(geom)
				dense.Dense = true
				sparse := NewCore(geom)
				sparse.Dense = false
				de := driveDiffTraffic(dense, scenario, cycles, 42)
				se := driveDiffTraffic(sparse, scenario, cycles, 42)
				if dense.Stats() != sparse.Stats() {
					t.Errorf("stats diverge:\ndense:  %+v\nsparse: %+v", dense.Stats(), sparse.Stats())
				}
				if len(de) != len(se) {
					t.Fatalf("event counts diverge: dense %d, sparse %d", len(de), len(se))
				}
				for i := range de {
					if de[i] != se[i] {
						t.Fatalf("event %d diverges:\ndense:  %+v\nsparse: %+v", i, de[i], se[i])
					}
				}
				if dense.Cycle() != sparse.Cycle() {
					t.Errorf("cycle counts diverge: dense %d, sparse %d", dense.Cycle(), sparse.Cycle())
				}
				if dense.Stats().Delivered == 0 {
					t.Error("scenario delivered nothing; differential vacuous")
				}
				if scenario == "faulty" && dense.Stats().Dropped == 0 {
					t.Error("faulty scenario dropped nothing; differential vacuous")
				}
			})
		}
	}
}

// TestDifferentialLockstep steps a dense and a sparse core strictly in
// lockstep under invariant checking, comparing per-cycle occupancy — a
// sharper probe than end-of-run stats, catching any single-cycle divergence
// in deflection signalling or injection order.
func TestDifferentialLockstep(t *testing.T) {
	geom := Params{Heights: 8, Angles: 4}
	dense, sparse := NewCore(geom), NewCore(geom)
	dense.Dense, sparse.Dense = true, false
	dense.CheckInvariants, sparse.CheckInvariants = true, true
	var dDel, sDel []Packet
	dense.Deliver = func(pkt Packet, _ int64) { dDel = append(dDel, pkt) }
	sparse.Deliver = func(pkt Packet, _ int64) { sDel = append(sDel, pkt) }
	rng := sim.NewRNG(7)
	cycles := 1500
	if testing.Short() {
		cycles = 400
	}
	for cy := 0; cy < cycles; cy++ {
		for src := 0; src < geom.Ports(); src++ {
			if rng.Float64() < 0.5 && dense.QueueLen(src) < 4 {
				dst := rng.Intn(geom.Ports())
				pkt := Packet{Src: src, Dst: dst, Payload: uint64(cy)<<16 | uint64(src)}
				dense.Inject(pkt)
				sparse.Inject(pkt)
			}
		}
		dense.Step()
		sparse.Step()
		if len(dDel) != len(sDel) {
			t.Fatalf("cycle %d: delivery counts diverge (%d vs %d)", cy, len(dDel), len(sDel))
		}
		for cl := 0; cl < geom.Cylinders(); cl++ {
			for h := 0; h < geom.Heights; h++ {
				for a := 0; a < geom.Angles; a++ {
					i := dense.idx(cl, h, a)
					dref, sref := dense.grid[i], sparse.grid[i]
					dOcc, sOcc := dref != 0, sref != 0
					if dOcc != sOcc {
						t.Fatalf("cycle %d: occupancy diverges at (c=%d h=%d a=%d)", cy, cl, h, a)
					}
					if dOcc && dense.pool[dref-1] != sparse.pool[sref-1] {
						t.Fatalf("cycle %d: packet diverges at (c=%d h=%d a=%d):\ndense:  %+v\nsparse: %+v",
							cy, cl, h, a, dense.pool[dref-1], sparse.pool[sref-1])
					}
				}
			}
		}
	}
	dense.RunUntilIdle(1 << 20)
	sparse.RunUntilIdle(1 << 20)
	if dense.Stats() != sparse.Stats() {
		t.Errorf("final stats diverge:\ndense:  %+v\nsparse: %+v", dense.Stats(), sparse.Stats())
	}
	for i := range dDel {
		if dDel[i] != sDel[i] {
			t.Fatalf("delivery %d diverges", i)
		}
	}
}

// TestReentrantInjectDuringDeliver pins the pool-safety contract: a Deliver
// callback may Inject immediately (as the kernel-coupled engine's VICs do),
// reusing the just-freed slot, on both step implementations identically.
func TestReentrantInjectDuringDeliver(t *testing.T) {
	for _, dense := range []bool{true, false} {
		geom := Params{Heights: 8, Angles: 4}
		c := NewCore(geom)
		c.Dense = dense
		rng := sim.NewRNG(5)
		bounces := 0
		c.Deliver = func(pkt Packet, _ int64) {
			if bounces < 5000 {
				bounces++
				c.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(geom.Ports()), Payload: pkt.Payload})
			}
		}
		for i := 0; i < 8; i++ {
			c.Inject(Packet{Src: i, Dst: rng.Intn(geom.Ports()), Payload: uint64(i)})
		}
		c.RunUntilIdle(1 << 22)
		if c.Busy() {
			t.Fatalf("dense=%v: failed to drain", dense)
		}
		if got := c.Stats().Delivered; got != int64(bounces)+8 {
			t.Fatalf("dense=%v: delivered %d, want %d", dense, got, bounces+8)
		}
	}
}

// TestPoolReuseBounded checks the pool stops growing once traffic reaches
// steady state: the allocation-free property the sparse core is built for.
func TestPoolReuseBounded(t *testing.T) {
	geom := Params{Heights: 8, Angles: 4}
	c := NewCore(geom)
	c.Deliver = func(Packet, int64) {}
	rng := sim.NewRNG(3)
	inject := func(cycles int) {
		for cy := 0; cy < cycles; cy++ {
			for src := 0; src < geom.Ports(); src++ {
				if rng.Float64() < 0.3 && c.QueueLen(src) < 4 {
					c.Inject(Packet{Src: src, Dst: rng.Intn(geom.Ports())})
				}
			}
			c.Step()
		}
	}
	inject(2000)
	grown := len(c.pool)
	inject(8000)
	if len(c.pool) > grown*2 {
		t.Fatalf("pool kept growing in steady state: %d -> %d", grown, len(c.pool))
	}
	c.RunUntilIdle(1 << 22)
	if len(c.free) != len(c.pool) {
		t.Fatalf("idle core leaks pool slots: %d free of %d", len(c.free), len(c.pool))
	}
}
