package dvswitch

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// PlanePolicy selects how a multi-plane fabric assigns packets to planes.
// Both policies are deterministic pure functions of the traffic, so runs are
// reproducible and checkpoint-restorable at any plane count.
type PlanePolicy uint8

const (
	// PlaneHash spreads packets by a static hash of (src, dst): every
	// packet of a given port pair rides the same plane, so per-pair
	// ordering is preserved even though planes progress independently.
	PlaneHash PlanePolicy = iota
	// PlaneRR deals packets from each source port across planes round-robin,
	// maximising plane utilisation for single-pair streams at the cost of
	// interleaving a pair's packets across planes.
	PlaneRR
)

// String returns the policy's config-file spelling.
func (p PlanePolicy) String() string {
	switch p {
	case PlaneHash:
		return "hash"
	case PlaneRR:
		return "rr"
	}
	return fmt.Sprintf("PlanePolicy(%d)", uint8(p))
}

// ParsePlanePolicy parses the config-file spelling of a plane policy.
// The empty string is the default, PlaneHash.
func ParsePlanePolicy(s string) (PlanePolicy, error) {
	switch s {
	case "", "hash":
		return PlaneHash, nil
	case "rr", "round-robin":
		return PlaneRR, nil
	}
	return PlaneHash, fmt.Errorf("dvswitch: unknown plane policy %q (want hash or rr)", s)
}

// MultiPlane aggregates N identical switch planes behind one Fabric
// boundary: injection picks a plane by the configured policy, deliveries
// from every plane funnel into one callback, and stats merge across planes.
// Planes share no state, so per-plane behavior (and per-plane snapshots)
// stay bit-identical to the same plane running alone with the same traffic.
type MultiPlane struct {
	planes []Fabric
	policy PlanePolicy
	rr     []uint32   // per-source-port next-plane counters (PlaneRR)
	parts  [][]Packet // reused per-plane partitions for InjectBatch
	fn     func(pkt Packet)
}

// NewMultiPlane builds a fabric over the given planes, which must agree on
// port count and cycle time. One plane is legal (the policy degenerates to
// the identity); zero planes is not.
func NewMultiPlane(planes []Fabric, policy PlanePolicy) *MultiPlane {
	if len(planes) == 0 {
		panic("dvswitch: NewMultiPlane needs at least one plane")
	}
	for _, pl := range planes[1:] {
		if pl.Ports() != planes[0].Ports() || pl.CycleTime() != planes[0].CycleTime() {
			panic(fmt.Sprintf("dvswitch: mismatched planes: %d ports/%v vs %d ports/%v",
				pl.Ports(), pl.CycleTime(), planes[0].Ports(), planes[0].CycleTime()))
		}
	}
	m := &MultiPlane{
		planes: planes,
		policy: policy,
		rr:     make([]uint32, planes[0].Ports()),
		parts:  make([][]Packet, len(planes)),
	}
	for _, pl := range planes {
		pl.OnDeliver(m.deliver)
	}
	return m
}

func (m *MultiPlane) deliver(pkt Packet) {
	if m.fn != nil {
		m.fn(pkt)
	}
}

// NumPlanes returns the plane count.
func (m *MultiPlane) NumPlanes() int { return len(m.planes) }

// Policy returns the plane-selection policy.
func (m *MultiPlane) Policy() PlanePolicy { return m.policy }

// planeFor picks the plane for one packet, advancing round-robin state.
func (m *MultiPlane) planeFor(src, dst int) int {
	if len(m.planes) == 1 {
		return 0
	}
	if m.policy == PlaneRR {
		c := m.rr[src]
		m.rr[src] = c + 1
		return int(c % uint32(len(m.planes)))
	}
	return int(planeHash(src, dst) % uint64(len(m.planes)))
}

// planeHash mixes a port pair into a well-spread 64-bit value
// (splitmix64-style finalisation). The function is part of the simulator's
// determinism contract: changing it changes every multi-plane Report.
func planeHash(src, dst int) uint64 {
	x := uint64(src)<<32 | uint64(uint32(dst))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ports implements Fabric.
func (m *MultiPlane) Ports() int { return m.planes[0].Ports() }

// CycleTime implements Fabric.
func (m *MultiPlane) CycleTime() sim.Time { return m.planes[0].CycleTime() }

// OnDeliver implements Fabric.
func (m *MultiPlane) OnDeliver(fn func(pkt Packet)) { m.fn = fn }

// Inject implements Fabric.
func (m *MultiPlane) Inject(pkt Packet) {
	m.planes[m.planeFor(pkt.Src, pkt.Dst)].Inject(pkt)
}

// InjectBatch implements Fabric: the batch is partitioned into per-plane
// sub-batches preserving slice order within each plane. Planes share no
// state, so this is semantically identical to per-element Inject calls
// while keeping each plane's batch amortisation.
func (m *MultiPlane) InjectBatch(pkts []Packet) {
	if len(m.planes) == 1 {
		m.planes[0].InjectBatch(pkts)
		return
	}
	for i := range m.parts {
		m.parts[i] = m.parts[i][:0]
	}
	for i := range pkts {
		pl := m.planeFor(pkts[i].Src, pkts[i].Dst)
		m.parts[pl] = append(m.parts[pl], pkts[i])
	}
	for pl, part := range m.parts {
		if len(part) > 0 {
			m.planes[pl].InjectBatch(part)
		}
	}
}

// FabricStats implements Fabric: the merge of every plane's stats.
func (m *MultiPlane) FabricStats() Stats {
	st := m.planes[0].FabricStats()
	for _, pl := range m.planes[1:] {
		st.Merge(pl.FabricStats())
	}
	return st
}

// SnapshotTo serialises the multi-plane wrapper's own mutable state — the
// policy and the round-robin counters — then each plane in index order.
// Plane encodings reuse the engines' canonical single-plane formats.
func (m *MultiPlane) SnapshotTo(e *snapshot.Encoder) {
	e.U32(uint32(len(m.planes)))
	e.U32(uint32(m.policy))
	for _, c := range m.rr {
		e.U32(c)
	}
	for _, pl := range m.planes {
		switch f := pl.(type) {
		case *Engine:
			f.SnapshotTo(e)
		case *FastModel:
			f.SnapshotTo(e)
		default:
			panic(fmt.Sprintf("dvswitch: MultiPlane.SnapshotTo: unsnapshotable plane %T", pl))
		}
	}
}
