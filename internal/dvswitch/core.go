// Package dvswitch implements the Data Vortex switch: a multilevel,
// bufferless, self-routed deflection network (Hawkins et al. 2007; the
// electronic FPGA implementation evaluated by Gioiosa et al. 2017).
//
// The switch is a set of C = log2(H)+1 nested cylinders, each with H rings
// ("heights") of A switching nodes ("angles"). Packets are injected on the
// outermost cylinder and ejected from the innermost. Every cycle every packet
// advances one angle; it either descends one cylinder (when the height bit
// that cylinder resolves already matches the destination and no deflection
// signal blocks it) or traverses a deflection path within its cylinder that
// toggles the bit under resolution. Contention is resolved without buffers:
// same-cylinder traffic asserts a deflection signal that forces the would-be
// descender to deflect, statistically costing two extra hops, exactly as the
// paper describes.
//
// Two engines share one interface: Core (cycle-accurate, ground truth) and
// FastModel (calibrated analytic model for long application runs).
package dvswitch

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/sim"
)

// Packet is one Data Vortex network packet: a 64-bit header and a 64-bit
// payload. Routing uses only Dst; Header carries the VIC-level command
// (destination address, group counter, opcode) and is opaque to the switch.
type Packet struct {
	Src     int    // source port
	Dst     int    // destination port
	Header  uint64 // VIC-level header word (opaque here)
	Payload uint64 // data word

	// Telemetry, filled in by the switch.
	InjectCycle int64 // cycle at which the packet entered the fabric
	Hops        int   // switching nodes traversed
	Deflections int   // deflection-path traversals (routing or contention)

	// Corrupt marks a payload damaged by an injected link fault. The switch
	// still delivers the packet; the receiving VIC's CRC model discards it.
	Corrupt bool
}

// WireBytes is the size of a packet on the wire: 64-bit header + 64-bit
// payload.
const WireBytes = 16

// Params describes a switch instance.
type Params struct {
	Heights int // H: rings per cylinder; must be a power of two
	Angles  int // A: switching nodes per ring
}

// Validate checks structural constraints.
func (p Params) Validate() error {
	if p.Heights < 1 || p.Heights&(p.Heights-1) != 0 {
		return fmt.Errorf("dvswitch: Heights must be a positive power of two, got %d", p.Heights)
	}
	if p.Angles < 1 {
		return fmt.Errorf("dvswitch: Angles must be >= 1, got %d", p.Angles)
	}
	return nil
}

// Ports returns the number of input (and output) ports, Nt = A×H.
func (p Params) Ports() int { return p.Heights * p.Angles }

// Cylinders returns C = log2(H) + 1.
func (p Params) Cylinders() int { return bits.Len(uint(p.Heights)) }

// ForPorts returns the smallest square-ish switch geometry with at least n
// ports, preferring more heights than angles (heights must be a power of 2).
func ForPorts(n int) Params {
	h := 1
	for h*4 < n { // grow heights while angles would exceed 4
		h *= 2
	}
	a := (n + h - 1) / h
	if a < 1 {
		a = 1
	}
	return Params{Heights: h, Angles: a}
}

// PortCoord maps a port index to its (height, angle) coordinates.
func (p Params) PortCoord(port int) (h, a int) { return port / p.Angles, port % p.Angles }

// PortIndex maps (height, angle) coordinates to a port index.
func (p Params) PortIndex(h, a int) int { return h*p.Angles + a }

// Stats aggregates fabric telemetry.
type Stats struct {
	Injected       int64
	Delivered      int64
	TotalHops      int64
	TotalDeflected int64 // total deflection-path traversals
	TotalLatency   int64 // cycles, inject→eject, including injection queueing
	MaxLatency     int64
	QueuedCycles   int64 // cycles packets spent waiting in injection queues
	Dropped        int64 // packets lost to injected faults (fault studies)
	Corrupted      int64 // payload corruptions injected by link faults

	// LatHist buckets delivered-packet latencies by log2(cycles):
	// bucket i counts latencies in [2^i, 2^(i+1)).
	LatHist [40]int64
}

func (s *Stats) recordLatency(lat int64) {
	s.TotalLatency += lat
	if lat > s.MaxLatency {
		s.MaxLatency = lat
	}
	if lat < 1 {
		lat = 1
	}
	b := bits.Len64(uint64(lat)) - 1
	if b >= len(s.LatHist) {
		b = len(s.LatHist) - 1
	}
	s.LatHist[b]++
}

// LatencyPercentile returns an upper bound (bucket boundary, in cycles) on
// the p-th percentile latency, 0 < p <= 100.
func (s Stats) LatencyPercentile(p float64) int64 {
	target := int64(p / 100 * float64(s.Delivered))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range s.LatHist {
		seen += c
		if seen >= target {
			return 1 << uint(i+1)
		}
	}
	return s.MaxLatency
}

// MeanLatency returns the mean inject→eject latency in cycles.
func (s Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// MeanDeflections returns the mean deflection count per delivered packet.
func (s Stats) MeanDeflections() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalDeflected) / float64(s.Delivered)
}

// ring is a growable FIFO of packet references with power-of-two capacity.
// Dequeue is O(1); the capacity is retained across runs, so a port queue
// that reached steady state never allocates again.
type ring struct {
	buf  []int32
	head int
	n    int
}

func (r *ring) push(v int32) {
	if r.n == len(r.buf) {
		nb := make([]int32, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Core is the cycle-accurate switch simulator. It is driven by calling Step
// once per switch cycle; it has no notion of wall time.
//
// Packets live in an index-addressed pool; the occupancy grids hold pool
// references (pool index + 1, 0 = empty) instead of pointers, so injection
// never heap-allocates and a long run creates no garbage. Step iterates only
// the occupied nodes (the active list) and clears only the scratch cells it
// wrote, so a cycle costs O(in-flight packets), not O(fabric size) — the
// regime that matters for the paper's sparse irregular traffic (GUPS, BFS).
type Core struct {
	p      Params
	levels int // L = log2(H); cylinder L is the output ring

	pool []Packet // index-addressed packet pool (in-flight and queued)
	free []int32  // reusable pool references

	grid    []int32 // node occupancy, flattened [c][h][a]; pool ref or 0
	next    []int32 // scratch: next node occupancy
	sameCyl []bool  // scratch: node receives same-cylinder traffic this step

	active     []int32   // occupied node indexes of grid (unsorted)
	nextActive []int32   // dirty list: cells of next written this step
	sigDirty   []int32   // dirty list: sameCyl flags set this step
	byCyl      [][]int32 // per-cylinder scratch for sorting the active list

	inq    []ring  // per-port injection queues (pool refs)
	qports []int32 // ports with non-empty injection queues

	cycle  int64
	flying int
	queued int

	// Deliver is invoked for every ejected packet with the delivery cycle.
	// It must be set before the first Step.
	Deliver func(pkt Packet, cycle int64)

	// CheckInvariants enables per-cycle verification of the routing
	// invariant: a packet in cylinder c always sits at a height whose
	// already-resolved bit prefix matches its destination. Used by tests;
	// costs one pass over the fabric per Step.
	CheckInvariants bool

	// Dense routes Step through denseStep, the seed implementation's
	// full-fabric scan. The two paths are bit-identical (same Stats, same
	// delivery order, same fault-RNG consumption — enforced by the golden
	// differential tests); Dense exists as the reference half of that
	// comparison and as a build-time escape hatch (-tags dvswitch_dense).
	Dense bool

	// faulty marks dead switching nodes (fault-injection studies in the
	// spirit of the reliability analyses the paper cites, refs [12][13]).
	// A packet whose only legal moves lead into dead nodes is dropped and
	// counted, since a bufferless fabric cannot hold it.
	faulty []bool

	// fp/frng configure probabilistic per-link faults (SetFaultProbs).
	fp   FaultProbs
	frng *sim.RNG

	// DropHook, when set, observes every packet lost to an injected fault
	// (dead node or probabilistic drop). Used by invariant tests.
	DropHook func(pkt Packet)

	// OnCycleEnd, when set, runs at the end of every Step, after the cycle
	// counter has advanced — on the sparse and the dense path alike, so an
	// invariant sweep (internal/check) observes both implementations through
	// one seam. It must only observe; mutating the core from the hook is
	// undefined.
	OnCycleEnd func(c *Core)

	// mut plants deliberate defects for checker validation (SetMutation).
	mut Mutation

	// obs holds the registry-backed instruments (SetObs); nil when
	// observability is disabled, costing one pointer test per hook.
	obs *SwitchObs

	stats Stats
}

// NewCore builds a cycle-accurate switch. It panics on invalid Params
// (construction is programmer-controlled; misuse is a bug, not input error).
func NewCore(p Params) *Core {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := p.Cylinders()
	n := c * p.Heights * p.Angles
	return &Core{
		p:       p,
		levels:  c - 1,
		pool:    make([]Packet, 0, p.Ports()),
		grid:    make([]int32, n),
		next:    make([]int32, n),
		sameCyl: make([]bool, n),
		byCyl:   make([][]int32, c),
		inq:     make([]ring, p.Ports()),
		Dense:   denseByDefault,
	}
}

// Params returns the switch geometry.
func (c *Core) Params() Params { return c.p }

// Cycle returns the number of Step calls so far.
func (c *Core) Cycle() int64 { return c.cycle }

// Stats returns a copy of the aggregated statistics.
func (c *Core) Stats() Stats { return c.stats }

// Busy reports whether any packet is in flight or queued for injection.
func (c *Core) Busy() bool { return c.flying > 0 || c.queued > 0 }

// QueueLen returns the injection queue depth of a port.
func (c *Core) QueueLen(port int) int { return c.inq[port].n }

// alloc stores pkt in the pool and returns its reference (index+1),
// reusing a freed slot when one exists.
func (c *Core) alloc(pkt Packet) int32 {
	if n := len(c.free); n > 0 {
		ref := c.free[n-1]
		c.free = c.free[:n-1]
		c.pool[ref-1] = pkt
		return ref
	}
	c.pool = append(c.pool, pkt)
	return int32(len(c.pool))
}

// release returns a pool slot to the free list. The caller must have copied
// the packet out first: a Deliver/DropHook callback may Inject and reuse the
// slot (and grow the pool, invalidating pointers into it) immediately.
func (c *Core) release(ref int32) { c.free = append(c.free, ref) }

// Inject enqueues a packet for injection at its source port. The packet
// enters the fabric at the first cycle its injection node is free.
func (c *Core) Inject(pkt Packet) {
	if pkt.Src < 0 || pkt.Src >= c.p.Ports() || pkt.Dst < 0 || pkt.Dst >= c.p.Ports() {
		panic(fmt.Sprintf("dvswitch: port out of range: src=%d dst=%d ports=%d", pkt.Src, pkt.Dst, c.p.Ports()))
	}
	pkt.InjectCycle = c.cycle
	pkt.Hops = 0
	pkt.Deflections = 0
	if c.inq[pkt.Src].n == 0 {
		c.qports = append(c.qports, int32(pkt.Src))
	}
	c.inq[pkt.Src].push(c.alloc(pkt))
	c.queued++
	c.stats.Injected++
	if c.obs != nil {
		c.obs.Injected.Inc()
	}
}

func (c *Core) idx(cyl, h, a int) int {
	return (cyl*c.p.Heights+h)*c.p.Angles + a
}

// place writes a pool reference into the next-occupancy scratch, recording
// the cell on the dirty list (which doubles as the next cycle's active list).
func (c *Core) place(idx int, ref int32) {
	if c.next[idx] == 0 {
		c.nextActive = append(c.nextActive, int32(idx))
	}
	c.next[idx] = ref
}

// signal asserts the same-cylinder deflection signal on a cell, recording it
// for end-of-step clearing.
func (c *Core) signal(idx int) {
	if c.mut&MutDropDeflectSignal != 0 {
		return
	}
	if !c.sameCyl[idx] {
		c.sameCyl[idx] = true
		c.sigDirty = append(c.sigDirty, int32(idx))
	}
}

// Step advances the fabric by one switch cycle: every in-flight packet moves
// one angle (descending, deflecting, circling, or ejecting), then injection
// ports fill any free outermost node.
//
// Only occupied nodes are visited: the active list is bucketed by cylinder
// and each bucket sorted ascending, which reproduces the dense scan order
// (inner cylinders first, then height-major within a cylinder) exactly —
// delivery order and fault-RNG draws are bit-identical to denseStep.
func (c *Core) Step() {
	if c.Dense {
		c.denseStep()
		return
	}
	// Crossover: above ~half occupancy the bucket-and-sort bookkeeping costs
	// more than just scanning every node (moveOne on an empty cell is a load
	// and a branch). The dense scan visits nodes in exactly the order the
	// sorted buckets produce, so switching keeps the step bit-identical.
	if len(c.active)*2 >= len(c.grid) {
		c.denseStep()
		return
	}
	cylN := c.p.Heights * c.p.Angles
	for i := range c.byCyl {
		c.byCyl[i] = c.byCyl[i][:0]
	}
	for _, idx := range c.active {
		cl := int(idx) / cylN
		c.byCyl[cl] = append(c.byCyl[cl], idx)
	}
	// Inner cylinders first: their same-cylinder movements assert the
	// deflection signals that outer cylinders must observe.
	for cl := c.levels; cl >= 0; cl-- {
		nodes := c.byCyl[cl]
		slices.Sort(nodes)
		for _, idx := range nodes {
			c.moveOne(cl, int(idx))
		}
	}
	c.injectPhase()
	c.finishStep()
}

// moveOne advances the packet occupying node idx of cylinder cl by one
// angle. It is the per-node routing logic shared by the sparse Step and the
// dense reference scan; an empty node is a no-op.
func (c *Core) moveOne(cl, idx int) {
	ref := c.grid[idx]
	if ref == 0 {
		return
	}
	f := &c.pool[ref-1]
	p := c.p
	A := p.Angles
	L := c.levels
	h := (idx / A) % p.Heights
	a := idx % A
	na := (a + 1) % A
	dh, da := p.PortCoord(f.Dst)
	if cl == L {
		// Output ring: circle to the destination angle, then eject.
		if a == da && c.mut&MutStickyOutputRing == 0 {
			c.eject(ref)
			return
		}
		if c.isFaulty(cl, h, na) {
			c.drop(ref)
			return
		}
		if c.linkFault(ref) {
			return
		}
		f.Hops++
		ni := c.idx(cl, h, na)
		c.place(ni, ref)
		c.signal(ni)
		return
	}
	bit := uint(L - 1 - cl) // height bit resolved by this cylinder
	if c.mut&MutBitOffByOne != 0 && L > 1 {
		bit = uint((int(bit) + 1) % L)
	}
	if c.linkFault(ref) {
		return
	}
	f.Hops++
	if (h>>bit)&1 == (dh>>bit)&1 && !c.sameCyl[c.idx(cl+1, h, na)] &&
		!c.isFaulty(cl+1, h, na) {
		// Descend: bit matches and no deflection signal.
		c.place(c.idx(cl+1, h, na), ref)
		return
	}
	// Deflect within the cylinder, toggling the bit under
	// resolution (preserves the already-resolved prefix).
	h2 := h ^ (1 << bit)
	if c.isFaulty(cl, h2, na) {
		// Both legal moves are dead: the bufferless fabric
		// cannot hold the packet.
		f.Hops--
		c.drop(ref)
		return
	}
	f.Deflections++
	if c.obs != nil {
		c.obs.Deflected.Inc()
		c.obs.DeflectByCyl[cl].Inc()
	}
	ni := c.idx(cl, h2, na)
	c.place(ni, ref)
	c.signal(ni)
}

// injectPhase fills free entry nodes from the waiting ports, visited in
// ascending port order (the dense scan order over cylinder 0).
func (c *Core) injectPhase() {
	if len(c.qports) == 0 {
		return
	}
	slices.Sort(c.qports)
	kept := c.qports[:0]
	for _, port := range c.qports {
		q := &c.inq[port]
		h, a := c.p.PortCoord(int(port))
		at := c.idx(0, h, a)
		if q.n > 0 && c.next[at] == 0 && !c.isFaulty(0, h, a) {
			ref := q.pop()
			c.queued--
			c.flying++
			c.stats.QueuedCycles += c.cycle - c.pool[ref-1].InjectCycle
			c.place(at, ref)
		}
		if q.n > 0 {
			kept = append(kept, port) // busy, or the port's entry node is down
		}
	}
	c.qports = kept
}

// finishStep publishes the next occupancy and resets the scratch state by
// clearing exactly the cells this step touched (no full-array wipes).
func (c *Core) finishStep() {
	c.grid, c.next = c.next, c.grid
	// c.next now holds the pre-step occupancy; its stale cells are exactly
	// the active list we just walked.
	for _, idx := range c.active {
		c.next[idx] = 0
	}
	for _, idx := range c.sigDirty {
		c.sameCyl[idx] = false
	}
	c.sigDirty = c.sigDirty[:0]
	c.active, c.nextActive = c.nextActive, c.active[:0]
	c.cycle++
	if c.CheckInvariants {
		c.verifyPrefixInvariant()
	}
	if c.OnCycleEnd != nil {
		c.OnCycleEnd(c)
	}
}

// denseStep is the seed implementation's full-fabric scan: every node of
// every cylinder is visited each cycle, occupied or not. It shares moveOne,
// injectPhase, and finishStep with the sparse Step — the only difference is
// the iteration source — and is kept as the reference half of the golden
// differential tests (see diff_test.go) and as the dvswitch_dense build-tag
// default.
func (c *Core) denseStep() {
	p := c.p
	for cl := c.levels; cl >= 0; cl-- {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				c.moveOne(cl, c.idx(cl, h, a))
			}
		}
	}
	c.injectPhase()
	c.finishStep()
}

// verifyPrefixInvariant panics if any in-flight packet violates the
// resolved-prefix property that makes the self-routing correct: at cylinder
// cl, the top cl bits of the packet's height equal its destination's.
func (c *Core) verifyPrefixInvariant() {
	p := c.p
	L := c.levels
	for cl := 0; cl <= L; cl++ {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				ref := c.grid[c.idx(cl, h, a)]
				if ref == 0 {
					continue
				}
				dh, _ := p.PortCoord(c.pool[ref-1].Dst)
				if cl == 0 {
					continue
				}
				shift := uint(L - cl)
				if h>>shift != dh>>shift {
					panic(fmt.Sprintf(
						"dvswitch: prefix invariant violated at (c=%d h=%d a=%d): dst height %d",
						cl, h, a, dh))
				}
			}
		}
	}
}

func (c *Core) eject(ref int32) {
	pkt := c.pool[ref-1]
	c.release(ref)
	c.flying--
	lat := c.cycle + 1 - pkt.InjectCycle
	c.stats.Delivered++
	c.stats.TotalHops += int64(pkt.Hops)
	c.stats.TotalDeflected += int64(pkt.Deflections)
	c.stats.recordLatency(lat)
	if c.obs != nil {
		c.obs.Delivered.Inc()
		c.obs.Latency.Observe(lat)
	}
	if c.Deliver != nil {
		c.Deliver(pkt, c.cycle+1)
		if c.mut&MutDoubleDeliver != 0 {
			c.Deliver(pkt, c.cycle+1)
		}
	}
}

// SetFaulty marks a switching node dead (or repairs it). Packets route
// around dead nodes by deflection where possible; a packet with no live
// move is dropped and counted in Stats.Dropped.
func (c *Core) SetFaulty(cyl, h, a int, dead bool) {
	if c.faulty == nil {
		c.faulty = make([]bool, len(c.grid))
	}
	c.faulty[c.idx(cyl, h, a)] = dead
}

func (c *Core) isFaulty(cyl, h, a int) bool {
	return c.faulty != nil && c.faulty[c.idx(cyl, h, a)]
}

// drop discards a packet lost to a fault.
func (c *Core) drop(ref int32) {
	pkt := c.pool[ref-1]
	c.release(ref)
	c.flying--
	if c.mut&MutSkipDropCount == 0 {
		c.stats.Dropped++
	}
	if c.obs != nil {
		c.obs.Dropped.Inc()
	}
	if c.DropHook != nil {
		c.DropHook(pkt)
	}
}

// ForEachInFlight calls fn for every packet currently occupying a switching
// node, in dense-scan order (cylinder-major ascending, then height, then
// angle) — the same order on the sparse and dense paths, so an invariant
// sweep sees identical sequences from both. id is the packet's pool
// reference: stable for the packet's whole flight and never shared by two
// concurrently in-flight packets, which makes it a duplication witness.
func (c *Core) ForEachInFlight(fn func(id int32, cyl, h, a int, pkt Packet)) {
	p := c.p
	for cl := 0; cl <= c.levels; cl++ {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				if ref := c.grid[c.idx(cl, h, a)]; ref != 0 {
					fn(ref, cl, h, a, c.pool[ref-1])
				}
			}
		}
	}
}

// RunUntilIdle steps until no packets remain (or maxCycles elapse) and
// returns the number of cycles stepped. It is a convenience for tests and
// traffic studies.
func (c *Core) RunUntilIdle(maxCycles int64) int64 {
	var n int64
	for c.Busy() && n < maxCycles {
		c.Step()
		n++
	}
	return n
}
