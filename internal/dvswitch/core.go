// Package dvswitch implements the Data Vortex switch: a multilevel,
// bufferless, self-routed deflection network (Hawkins et al. 2007; the
// electronic FPGA implementation evaluated by Gioiosa et al. 2017).
//
// The switch is a set of C = log2(H)+1 nested cylinders, each with H rings
// ("heights") of A switching nodes ("angles"). Packets are injected on the
// outermost cylinder and ejected from the innermost. Every cycle every packet
// advances one angle; it either descends one cylinder (when the height bit
// that cylinder resolves already matches the destination and no deflection
// signal blocks it) or traverses a deflection path within its cylinder that
// toggles the bit under resolution. Contention is resolved without buffers:
// same-cylinder traffic asserts a deflection signal that forces the would-be
// descender to deflect, statistically costing two extra hops, exactly as the
// paper describes.
//
// Two engines share one interface: Core (cycle-accurate, ground truth) and
// FastModel (calibrated analytic model for long application runs).
package dvswitch

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Packet is one Data Vortex network packet: a 64-bit header and a 64-bit
// payload. Routing uses only Dst; Header carries the VIC-level command
// (destination address, group counter, opcode) and is opaque to the switch.
type Packet struct {
	Src     int    // source port
	Dst     int    // destination port
	Header  uint64 // VIC-level header word (opaque here)
	Payload uint64 // data word

	// Telemetry, filled in by the switch.
	InjectCycle int64 // cycle at which the packet entered the fabric
	Hops        int   // switching nodes traversed
	Deflections int   // deflection-path traversals (routing or contention)

	// Corrupt marks a payload damaged by an injected link fault. The switch
	// still delivers the packet; the receiving VIC's CRC model discards it.
	Corrupt bool
}

// WireBytes is the size of a packet on the wire: 64-bit header + 64-bit
// payload.
const WireBytes = 16

// Params describes a switch instance.
type Params struct {
	Heights int // H: rings per cylinder; must be a power of two
	Angles  int // A: switching nodes per ring
}

// Validate checks structural constraints.
func (p Params) Validate() error {
	if p.Heights < 1 || p.Heights&(p.Heights-1) != 0 {
		return fmt.Errorf("dvswitch: Heights must be a positive power of two, got %d", p.Heights)
	}
	if p.Angles < 1 {
		return fmt.Errorf("dvswitch: Angles must be >= 1, got %d", p.Angles)
	}
	return nil
}

// Ports returns the number of input (and output) ports, Nt = A×H.
func (p Params) Ports() int { return p.Heights * p.Angles }

// Cylinders returns C = log2(H) + 1.
func (p Params) Cylinders() int { return bits.Len(uint(p.Heights)) }

// ForPorts returns the smallest square-ish switch geometry with at least n
// ports, preferring more heights than angles (heights must be a power of 2).
func ForPorts(n int) Params {
	h := 1
	for h*4 < n { // grow heights while angles would exceed 4
		h *= 2
	}
	a := (n + h - 1) / h
	if a < 1 {
		a = 1
	}
	return Params{Heights: h, Angles: a}
}

// PortCoord maps a port index to its (height, angle) coordinates.
func (p Params) PortCoord(port int) (h, a int) { return port / p.Angles, port % p.Angles }

// PortIndex maps (height, angle) coordinates to a port index.
func (p Params) PortIndex(h, a int) int { return h*p.Angles + a }

// Stats aggregates fabric telemetry.
type Stats struct {
	Injected       int64
	Delivered      int64
	TotalHops      int64
	TotalDeflected int64 // total deflection-path traversals
	TotalLatency   int64 // cycles, inject→eject, including injection queueing
	MaxLatency     int64
	QueuedCycles   int64 // cycles packets spent waiting in injection queues
	Dropped        int64 // packets lost to injected faults (fault studies)
	Corrupted      int64 // payload corruptions injected by link faults

	// LatHist buckets delivered-packet latencies by log2(cycles):
	// bucket i counts latencies in [2^i, 2^(i+1)).
	LatHist [40]int64
}

func (s *Stats) recordLatency(lat int64) {
	s.TotalLatency += lat
	if lat > s.MaxLatency {
		s.MaxLatency = lat
	}
	if lat < 1 {
		lat = 1
	}
	b := bits.Len64(uint64(lat)) - 1
	if b >= len(s.LatHist) {
		b = len(s.LatHist) - 1
	}
	s.LatHist[b]++
}

// LatencyPercentile returns an upper bound (bucket boundary, in cycles) on
// the p-th percentile latency, 0 < p <= 100.
func (s Stats) LatencyPercentile(p float64) int64 {
	target := int64(p / 100 * float64(s.Delivered))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range s.LatHist {
		seen += c
		if seen >= target {
			return 1 << uint(i+1)
		}
	}
	return s.MaxLatency
}

// MeanLatency returns the mean inject→eject latency in cycles.
func (s Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// MeanDeflections returns the mean deflection count per delivered packet.
func (s Stats) MeanDeflections() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalDeflected) / float64(s.Delivered)
}

// Core is the cycle-accurate switch simulator. It is driven by calling Step
// once per switch cycle; it has no notion of wall time.
type Core struct {
	p       Params
	levels  int       // L = log2(H); cylinder L is the output ring
	cyl     []*Packet // node occupancy, flattened [c][h][a]
	sameCyl []bool    // scratch: node receives same-cylinder traffic this step
	next    []*Packet // scratch: next node occupancy
	inq     [][]Packet
	cycle   int64
	flying  int
	queued  int

	// Deliver is invoked for every ejected packet with the delivery cycle.
	// It must be set before the first Step.
	Deliver func(pkt Packet, cycle int64)

	// CheckInvariants enables per-cycle verification of the routing
	// invariant: a packet in cylinder c always sits at a height whose
	// already-resolved bit prefix matches its destination. Used by tests;
	// costs one pass over the fabric per Step.
	CheckInvariants bool

	// faulty marks dead switching nodes (fault-injection studies in the
	// spirit of the reliability analyses the paper cites, refs [12][13]).
	// A packet whose only legal moves lead into dead nodes is dropped and
	// counted, since a bufferless fabric cannot hold it.
	faulty []bool

	// fp/frng configure probabilistic per-link faults (SetFaultProbs).
	fp   FaultProbs
	frng *sim.RNG

	// DropHook, when set, observes every packet lost to an injected fault
	// (dead node or probabilistic drop). Used by invariant tests.
	DropHook func(pkt Packet)

	stats Stats
}

// NewCore builds a cycle-accurate switch. It panics on invalid Params
// (construction is programmer-controlled; misuse is a bug, not input error).
func NewCore(p Params) *Core {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := p.Cylinders()
	n := c * p.Heights * p.Angles
	return &Core{
		p:       p,
		levels:  c - 1,
		cyl:     make([]*Packet, n),
		sameCyl: make([]bool, n),
		next:    make([]*Packet, n),
		inq:     make([][]Packet, p.Ports()),
	}
}

// Params returns the switch geometry.
func (c *Core) Params() Params { return c.p }

// Cycle returns the number of Step calls so far.
func (c *Core) Cycle() int64 { return c.cycle }

// Stats returns a copy of the aggregated statistics.
func (c *Core) Stats() Stats { return c.stats }

// Busy reports whether any packet is in flight or queued for injection.
func (c *Core) Busy() bool { return c.flying > 0 || c.queued > 0 }

// QueueLen returns the injection queue depth of a port.
func (c *Core) QueueLen(port int) int { return len(c.inq[port]) }

// Inject enqueues a packet for injection at its source port. The packet
// enters the fabric at the first cycle its injection node is free.
func (c *Core) Inject(pkt Packet) {
	if pkt.Src < 0 || pkt.Src >= c.p.Ports() || pkt.Dst < 0 || pkt.Dst >= c.p.Ports() {
		panic(fmt.Sprintf("dvswitch: port out of range: src=%d dst=%d ports=%d", pkt.Src, pkt.Dst, c.p.Ports()))
	}
	pkt.InjectCycle = c.cycle
	pkt.Hops = 0
	pkt.Deflections = 0
	c.inq[pkt.Src] = append(c.inq[pkt.Src], pkt)
	c.queued++
	c.stats.Injected++
}

func (c *Core) idx(cyl, h, a int) int {
	return (cyl*c.p.Heights+h)*c.p.Angles + a
}

// Step advances the fabric by one switch cycle: every in-flight packet moves
// one angle (descending, deflecting, circling, or ejecting), then injection
// ports fill any free outermost node.
func (c *Core) Step() {
	p := c.p
	A := p.Angles
	L := c.levels
	for i := range c.next {
		c.next[i] = nil
		c.sameCyl[i] = false
	}
	// Inner cylinders first: their same-cylinder movements assert the
	// deflection signals that outer cylinders must observe.
	for cl := L; cl >= 0; cl-- {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < A; a++ {
				f := c.cyl[c.idx(cl, h, a)]
				if f == nil {
					continue
				}
				na := (a + 1) % A
				dh, da := p.PortCoord(f.Dst)
				if cl == L {
					// Output ring: circle to the destination angle, then eject.
					if a == da {
						c.eject(*f)
						continue
					}
					if c.isFaulty(cl, h, na) {
						c.drop(f)
						continue
					}
					if c.linkFault(f) {
						continue
					}
					f.Hops++
					c.next[c.idx(cl, h, na)] = f
					c.sameCyl[c.idx(cl, h, na)] = true
					continue
				}
				bit := uint(L - 1 - cl) // height bit resolved by this cylinder
				if c.linkFault(f) {
					continue
				}
				f.Hops++
				if (h>>bit)&1 == (dh>>bit)&1 && !c.sameCyl[c.idx(cl+1, h, na)] &&
					!c.isFaulty(cl+1, h, na) {
					// Descend: bit matches and no deflection signal.
					c.next[c.idx(cl+1, h, na)] = f
					continue
				}
				// Deflect within the cylinder, toggling the bit under
				// resolution (preserves the already-resolved prefix).
				h2 := h ^ (1 << bit)
				if c.isFaulty(cl, h2, na) {
					// Both legal moves are dead: the bufferless fabric
					// cannot hold the packet.
					f.Hops--
					c.drop(f)
					continue
				}
				f.Deflections++
				c.next[c.idx(cl, h2, na)] = f
				c.sameCyl[c.idx(cl, h2, na)] = true
			}
		}
	}
	// Injection: a port's packet enters its outermost node when free.
	for port := range c.inq {
		if len(c.inq[port]) == 0 {
			continue
		}
		h, a := p.PortCoord(port)
		at := c.idx(0, h, a)
		if c.next[at] != nil || c.isFaulty(0, h, a) {
			continue // busy, or the port's entry node is down
		}
		q := c.inq[port]
		pkt := q[0]
		copy(q, q[1:])
		c.inq[port] = q[:len(q)-1]
		c.queued--
		c.flying++
		c.stats.QueuedCycles += c.cycle - pkt.InjectCycle
		f := pkt
		c.next[at] = &f
	}
	c.cyl, c.next = c.next, c.cyl
	c.cycle++
	if c.CheckInvariants {
		c.verifyPrefixInvariant()
	}
}

// verifyPrefixInvariant panics if any in-flight packet violates the
// resolved-prefix property that makes the self-routing correct: at cylinder
// cl, the top cl bits of the packet's height equal its destination's.
func (c *Core) verifyPrefixInvariant() {
	p := c.p
	L := c.levels
	for cl := 0; cl <= L; cl++ {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				f := c.cyl[c.idx(cl, h, a)]
				if f == nil {
					continue
				}
				dh, _ := p.PortCoord(f.Dst)
				if cl == 0 {
					continue
				}
				shift := uint(L - cl)
				if h>>shift != dh>>shift {
					panic(fmt.Sprintf(
						"dvswitch: prefix invariant violated at (c=%d h=%d a=%d): dst height %d",
						cl, h, a, dh))
				}
			}
		}
	}
}

func (c *Core) eject(pkt Packet) {
	c.flying--
	lat := c.cycle + 1 - pkt.InjectCycle
	c.stats.Delivered++
	c.stats.TotalHops += int64(pkt.Hops)
	c.stats.TotalDeflected += int64(pkt.Deflections)
	c.stats.recordLatency(lat)
	if c.Deliver != nil {
		c.Deliver(pkt, c.cycle+1)
	}
}

// SetFaulty marks a switching node dead (or repairs it). Packets route
// around dead nodes by deflection where possible; a packet with no live
// move is dropped and counted in Stats.Dropped.
func (c *Core) SetFaulty(cyl, h, a int, dead bool) {
	if c.faulty == nil {
		c.faulty = make([]bool, len(c.cyl))
	}
	c.faulty[c.idx(cyl, h, a)] = dead
}

func (c *Core) isFaulty(cyl, h, a int) bool {
	return c.faulty != nil && c.faulty[c.idx(cyl, h, a)]
}

// drop discards a packet lost to a fault.
func (c *Core) drop(f *Packet) {
	c.flying--
	c.stats.Dropped++
	if c.DropHook != nil {
		c.DropHook(*f)
	}
}

// RunUntilIdle steps until no packets remain (or maxCycles elapse) and
// returns the number of cycles stepped. It is a convenience for tests and
// traffic studies.
func (c *Core) RunUntilIdle(maxCycles int64) int64 {
	var n int64
	for c.Busy() && n < maxCycles {
		c.Step()
		n++
	}
	return n
}
