// Package dvswitch implements the Data Vortex switch: a multilevel,
// bufferless, self-routed deflection network (Hawkins et al. 2007; the
// electronic FPGA implementation evaluated by Gioiosa et al. 2017).
//
// The switch is a set of C = log2(H)+1 nested cylinders, each with H rings
// ("heights") of A switching nodes ("angles"). Packets are injected on the
// outermost cylinder and ejected from the innermost. Every cycle every packet
// advances one angle; it either descends one cylinder (when the height bit
// that cylinder resolves already matches the destination and no deflection
// signal blocks it) or traverses a deflection path within its cylinder that
// toggles the bit under resolution. Contention is resolved without buffers:
// same-cylinder traffic asserts a deflection signal that forces the would-be
// descender to deflect, statistically costing two extra hops, exactly as the
// paper describes.
//
// Two engines share one interface: Core (cycle-accurate, ground truth) and
// FastModel (calibrated analytic model for long application runs).
package dvswitch

import (
	"fmt"
	"math/bits"

	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Packet is one Data Vortex network packet: a 64-bit header and a 64-bit
// payload. Routing uses only Dst; Header carries the VIC-level command
// (destination address, group counter, opcode) and is opaque to the switch.
type Packet struct {
	Src     int    // source port
	Dst     int    // destination port
	Header  uint64 // VIC-level header word (opaque here)
	Payload uint64 // data word

	// Telemetry, filled in by the switch.
	InjectCycle int64 // cycle at which the packet entered the fabric
	Hops        int   // switching nodes traversed
	Deflections int   // deflection-path traversals (routing or contention)

	// Corrupt marks a payload damaged by an injected link fault. The switch
	// still delivers the packet; the receiving VIC's CRC model discards it.
	Corrupt bool

	// Flow is the attribution flow id stamped by the issuing VIC (0 =
	// untraced). Opaque to the switch: routing never reads it. Packs into
	// the struct's existing padding, so Packet stays 64 bytes.
	Flow uint32
}

// WireBytes is the size of a packet on the wire: 64-bit header + 64-bit
// payload.
const WireBytes = 16

// Params describes a switch instance.
type Params struct {
	Heights int // H: rings per cylinder; must be a power of two
	Angles  int // A: switching nodes per ring
}

// MaxGeometryCells bounds the total switching-node count C×H×A of a valid
// geometry. The core's cell grid, deflection-signal strides, and snapshot
// grid indexes are all int32/uint32 encodings; past this bound they would
// wrap silently, so Validate rejects such geometries with a GeometryError
// instead. 2^30 cells (a ~96 GiB grid) is far past any simulable fabric —
// the bound exists to make the overflow impossible, not to be reachable.
const MaxGeometryCells = 1 << 30

// GeometryError reports a structurally invalid or out-of-range switch
// geometry. Field names the offending Params field (or derived quantity),
// Value its actual value, and Reason the violated constraint.
type GeometryError struct {
	Field  string
	Value  int
	Reason string
}

// Error formats the violation as "field = value: reason".
func (e *GeometryError) Error() string {
	return fmt.Sprintf("dvswitch: invalid geometry: %s = %d: %s", e.Field, e.Value, e.Reason)
}

// Validate checks structural constraints: Heights a positive power of two,
// Angles >= 1, and the derived cell grid within the int32 index encodings
// (see MaxGeometryCells). Errors are *GeometryError.
func (p Params) Validate() error {
	if p.Heights < 1 || p.Heights&(p.Heights-1) != 0 {
		return &GeometryError{Field: "Heights", Value: p.Heights,
			Reason: "must be a positive power of two"}
	}
	if p.Angles < 1 {
		return &GeometryError{Field: "Angles", Value: p.Angles, Reason: "must be >= 1"}
	}
	// Cells = C*H*A must stay within the int32 cell/signal/pool encodings.
	// Bound each factor first so the staged products cannot overflow int64.
	if p.Heights > MaxGeometryCells {
		return &GeometryError{Field: "Heights", Value: p.Heights,
			Reason: fmt.Sprintf("exceeds MaxGeometryCells (%d)", MaxGeometryCells)}
	}
	if p.Angles > MaxGeometryCells {
		return &GeometryError{Field: "Angles", Value: p.Angles,
			Reason: fmt.Sprintf("exceeds MaxGeometryCells (%d)", MaxGeometryCells)}
	}
	ports := int64(p.Heights) * int64(p.Angles) // <= 2^60, no overflow
	if ports > MaxGeometryCells {
		return &GeometryError{Field: "Heights×Angles", Value: p.Heights,
			Reason: fmt.Sprintf("%d ports exceed MaxGeometryCells (%d)", ports, MaxGeometryCells)}
	}
	if cells := int64(p.Cylinders()) * ports; cells > MaxGeometryCells {
		return &GeometryError{Field: "Cylinders×Heights×Angles", Value: p.Heights,
			Reason: fmt.Sprintf("%d switching nodes exceed MaxGeometryCells (%d); int32 cell indexes would wrap", cells, MaxGeometryCells)}
	}
	return nil
}

// Ports returns the number of input (and output) ports, Nt = A×H.
func (p Params) Ports() int { return p.Heights * p.Angles }

// Cylinders returns C = log2(H) + 1.
func (p Params) Cylinders() int { return bits.Len(uint(p.Heights)) }

// ForPorts returns the smallest square-ish switch geometry with at least n
// ports, preferring more heights than angles (heights must be a power of 2).
//
// The paper's construction needs A >= C = log2(H)+1: a packet entering at an
// arbitrary angle must be able to resolve one height bit per cylinder within
// a single revolution, so rings shorter than the cylinder count force extra
// laps and deflection hot-spots. The old heuristic capped Angles at 4 for
// every n, which degenerates into tall-thin fabrics (e.g. 1024 ports as
// H=256×A=4, C=9 > A) at large radix; here we start from that shape and
// shrink Heights until the ring is long enough for the cylinder count.
func ForPorts(n int) Params {
	h := 1
	for h*4 < n { // grow heights while angles would exceed 4
		h *= 2
	}
	a := (n + h - 1) / h
	if a < 1 {
		a = 1
	}
	// Rebalance: halving H doubles (roughly) A and drops C by one, so the
	// loop terminates — at H=1, C=1 <= A. For n <= 32 the initial shape
	// already satisfies A >= C and is returned unchanged.
	for a < bits.Len(uint(h)) {
		h /= 2
		a = (n + h - 1) / h
	}
	return Params{Heights: h, Angles: a}
}

// PortCoord maps a port index to its (height, angle) coordinates.
func (p Params) PortCoord(port int) (h, a int) { return port / p.Angles, port % p.Angles }

// PortIndex maps (height, angle) coordinates to a port index.
func (p Params) PortIndex(h, a int) int { return h*p.Angles + a }

// Stats aggregates fabric telemetry.
type Stats struct {
	Injected       int64
	Delivered      int64
	TotalHops      int64
	TotalDeflected int64 // total deflection-path traversals
	TotalLatency   int64 // cycles, inject→eject, including injection queueing
	MaxLatency     int64
	QueuedCycles   int64 // cycles packets spent waiting in injection queues
	Dropped        int64 // packets lost to injected faults (fault studies)
	Corrupted      int64 // payload corruptions injected by link faults

	// LatHist buckets delivered-packet latencies by log2(cycles):
	// bucket i counts latencies in [2^i, 2^(i+1)).
	LatHist [40]int64
}

// Merge accumulates o into s: counters and histogram buckets sum,
// MaxLatency takes the maximum. Used to aggregate multi-plane fabrics.
func (s *Stats) Merge(o Stats) {
	s.Injected += o.Injected
	s.Delivered += o.Delivered
	s.TotalHops += o.TotalHops
	s.TotalDeflected += o.TotalDeflected
	s.TotalLatency += o.TotalLatency
	if o.MaxLatency > s.MaxLatency {
		s.MaxLatency = o.MaxLatency
	}
	s.QueuedCycles += o.QueuedCycles
	s.Dropped += o.Dropped
	s.Corrupted += o.Corrupted
	for i := range s.LatHist {
		s.LatHist[i] += o.LatHist[i]
	}
}

func (s *Stats) recordLatency(lat int64) {
	s.TotalLatency += lat
	if lat > s.MaxLatency {
		s.MaxLatency = lat
	}
	if lat < 1 {
		lat = 1
	}
	b := bits.Len64(uint64(lat)) - 1
	if b >= len(s.LatHist) {
		b = len(s.LatHist) - 1
	}
	s.LatHist[b]++
}

// LatencyPercentile returns an upper bound (bucket boundary, in cycles) on
// the p-th percentile latency, 0 < p <= 100.
func (s Stats) LatencyPercentile(p float64) int64 {
	target := int64(p / 100 * float64(s.Delivered))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range s.LatHist {
		seen += c
		if seen >= target {
			return 1 << uint(i+1)
		}
	}
	return s.MaxLatency
}

// MeanLatency returns the mean inject→eject latency in cycles.
func (s Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// MeanDeflections returns the mean deflection count per delivered packet.
func (s Stats) MeanDeflections() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalDeflected) / float64(s.Delivered)
}

// ring is a growable FIFO of packet references with power-of-two capacity.
// Dequeue is O(1); the capacity is retained across runs, so a port queue
// that reached steady state never allocates again.
type ring struct {
	buf  []int32
	head int
	n    int
}

func (r *ring) push(v int32) {
	if r.n == len(r.buf) {
		nb := make([]int32, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// grow pre-sizes the ring to hold at least n items without reallocating.
func (r *ring) grow(n int) {
	if n <= len(r.buf) {
		return
	}
	sz := 8
	for sz < n {
		sz *= 2
	}
	nb := make([]int32, sz)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// pflight is the hot in-flight state of one pooled packet: destination
// coordinates (precomputed at alloc so routing never divides), the cycle the
// packet was placed into the fabric, and its deflection count.
//
// The hop counter is gone: hops are derived. Every in-flight packet makes
// exactly one angular move per step, and every exit (eject, drop on a dead
// node, drop on a link fault) happens before that step's move, so
//
//	Hops = exit_step − entry_step − 1
//
// holds on all paths — including the legacy dead-deflection drop, whose
// increment/decrement pair cancels. Deriving hops at eject/snapshot time
// removes a read-modify-write from every ring move in the hot loop. entry is
// a truncated cycle counter; the subtraction is wrap-safe because no flight
// lasts 2^32 cycles.
type pflight struct {
	dh, da int32
	entry  uint32 // uint32(cycle) at injectPhase placement
	defl   uint32 // deflection-path traversals
}

// cellTab is the precomputed routing table for one switching node: the
// neighbour cell indexes a packet can move to and the height bit this
// cylinder resolves. Computing these once at construction removes every
// division and modulo from the per-packet hot path (moveCell), which
// profiling showed dominated Step at high occupancy.
type cellTab struct {
	next int32 // same-cylinder next-angle cell (output-ring circling)
	desc int32 // descend target: (cyl+1, h, a+1); -1 on the output ring
	defl int32 // deflection target: (cyl, h^bit, a+1); -1 on the output ring
	da   int32 // this cell's angle (output-ring eject comparison)
	hbit int32 // value of the resolved height bit at this cell

	// Strided signal-bitmap bit indexes (see sigMask): this cell's own bit,
	// the descend target's bit (read before descending), and the bits of the
	// deflection/circling targets (written when moving within the cylinder).
	sig     int32
	descSig int32
	deflSig int32
	nextSig int32

	cyl int16 // cylinder index (sparse-step bucketing)
	bit uint8 // height bit resolved by this cylinder
}

// Core is the cycle-accurate switch simulator. It is driven by calling Step
// once per switch cycle; it has no notion of wall time.
//
// Packets live in an index-addressed pool; the occupancy grids hold pool
// references (pool index + 1, 0 = empty) instead of pointers, so injection
// never heap-allocates and a long run creates no garbage. Step iterates only
// the occupied nodes (the active list) and clears only the scratch cells it
// wrote, so a cycle costs O(in-flight packets), not O(fabric size) — the
// regime that matters for the paper's sparse irregular traffic (GUPS, BFS).
type Core struct {
	p      Params
	levels int // L = log2(H); cylinder L is the output ring
	cylN   int // nodes per cylinder (Heights × Angles)

	pool []Packet // index-addressed packet pool (in-flight and queued)
	free []int32  // reusable pool references

	// Hot per-packet routing state, split from the pool: moveCell touches
	// only these 16 bytes per packet per cycle instead of dragging the full
	// Packet through the cache. pool[i] remains authoritative for identity
	// fields (Src/Dst/Header/Payload/InjectCycle/Corrupt); hops and
	// deflections live here for the packet's whole flight and are copied
	// back into the Packet at eject/drop/snapshot time (packetAt).
	pstate []pflight

	tab      []cellTab // per-cell routing table, index-parallel with grid
	portCell []int32   // port → cylinder-0 entry cell index
	portPF   []pflight // port → fresh flight state (precomputed coordinates)

	grid []int32 // node occupancy, flattened [c][h][a]; pool ref or 0
	next []int32 // scratch: next node occupancy

	// Occupancy and scratch state are tracked as bitmaps, one bit per
	// switching node. Iterating set bits (bits.TrailingZeros64) visits
	// occupied cells in ascending index order for free, which is exactly the
	// dense-scan order the golden differential tests pin — the sparse stepper
	// needs no bucketing and no sorting. place and signal become single
	// OR-stores, and end-of-step clearing touches a handful of words instead
	// of walking per-cell dirty lists.
	occMask []uint64 // occupancy bitmap of grid (bit set ⇔ grid[idx] != 0)
	nxtMask []uint64 // scratch: occupancy bitmap of next
	// sigMask holds the per-step same-cylinder deflection signals. Unlike
	// occMask/nxtMask it is strided: each cylinder starts on its own 64-bit
	// word boundary. A move pass over cylinder c writes signals only into
	// cylinder c's words and reads only cylinder c+1's (processed in the
	// previous pass), so no word is both read and written within one pass —
	// without the padding, adjacent cylinders share words and every read
	// store-forwards from the previous iteration's write, serialising the
	// hot loop.
	sigMask []uint64

	inq   []ring   // per-port injection queues (pool refs)
	qmask []uint64 // bitmap: ports with non-empty injection queues

	cycle  int64
	flying int
	queued int

	// Deliver is invoked for every ejected packet with the delivery cycle.
	// It must be set before the first Step.
	Deliver func(pkt Packet, cycle int64)

	// CheckInvariants enables per-cycle verification of the routing
	// invariant: a packet in cylinder c always sits at a height whose
	// already-resolved bit prefix matches its destination. Used by tests;
	// costs one pass over the fabric per Step.
	CheckInvariants bool

	// Dense routes Step through denseStep, the seed implementation's
	// full-fabric scan. The two paths are bit-identical (same Stats, same
	// delivery order, same fault-RNG consumption — enforced by the golden
	// differential tests); Dense exists as the reference half of that
	// comparison and as a build-time escape hatch (-tags dvswitch_dense).
	Dense bool

	// faulty marks dead switching nodes (fault-injection studies in the
	// spirit of the reliability analyses the paper cites, refs [12][13]).
	// A packet whose only legal moves lead into dead nodes is dropped and
	// counted, since a bufferless fabric cannot hold it.
	faulty []bool

	// fp/frng configure probabilistic per-link faults (SetFaultProbs).
	fp   FaultProbs
	frng *sim.RNG

	// DropHook, when set, observes every packet lost to an injected fault
	// (dead node or probabilistic drop). Used by invariant tests.
	DropHook func(pkt Packet)

	// OnCycleEnd, when set, runs at the end of every Step, after the cycle
	// counter has advanced — on the sparse and the dense path alike, so an
	// invariant sweep (internal/check) observes both implementations through
	// one seam. It must only observe; mutating the core from the hook is
	// undefined.
	OnCycleEnd func(c *Core)

	// mut plants deliberate defects for checker validation (SetMutation).
	mut Mutation

	// obs holds the registry-backed instruments (SetObs); nil when
	// observability is disabled, costing one pointer test per hook.
	obs *SwitchObs

	stats Stats

	// heat is the attribution layer's cylinder×angle deflection census
	// (SetHeat); nil when attribution is disabled. Like obs it forces the
	// instrumented move loops, so cleanPath gates on it. Kept after stats
	// so the hot counters keep their field offsets.
	heat *attr.Heat

	// par, when set (SetFanPool), lets clean-path cycles above an occupancy
	// threshold fan their move phase across a worker pool — bit-identical to
	// the serial step (see par.go).
	par *parState
}

// NewCore builds a cycle-accurate switch. It panics on invalid Params
// (construction is programmer-controlled; misuse is a bug, not input error).
func NewCore(p Params) *Core {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	cyl := p.Cylinders()
	n := cyl * p.Heights * p.Angles
	words := (n + 63) / 64
	c := &Core{
		p:       p,
		levels:  cyl - 1,
		cylN:    p.Heights * p.Angles,
		pool:    make([]Packet, 0, p.Ports()),
		pstate:  make([]pflight, 0, p.Ports()),
		grid:    make([]int32, n),
		next:    make([]int32, n),
		occMask: make([]uint64, words),
		nxtMask: make([]uint64, words),
		sigMask: make([]uint64, cyl*((p.Heights*p.Angles+63)/64)),
		inq:     make([]ring, p.Ports()),
		qmask:   make([]uint64, (p.Ports()+63)/64),
		tab:     make([]cellTab, n),
		Dense:   denseByDefault,
	}
	L := c.levels
	for cl := 0; cl <= L; cl++ {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				t := &c.tab[c.idx(cl, h, a)]
				na := (a + 1) % p.Angles
				t.cyl = int16(cl)
				t.da = int32(a)
				t.next = int32(c.idx(cl, h, na))
				t.sig = c.sigBit(cl, h, a)
				t.nextSig = c.sigBit(cl, h, na)
				if cl == L {
					t.desc, t.defl = -1, -1
					t.descSig, t.deflSig = 0, 0
					continue
				}
				bit := uint(L - 1 - cl)
				t.bit = uint8(bit)
				t.hbit = int32((h >> bit) & 1)
				t.desc = int32(c.idx(cl+1, h, na))
				t.descSig = c.sigBit(cl+1, h, na)
				t.defl = int32(c.idx(cl, h^(1<<bit), na))
				t.deflSig = c.sigBit(cl, h^(1<<bit), na)
			}
		}
	}
	c.portCell = make([]int32, p.Ports())
	c.portPF = make([]pflight, p.Ports())
	for port := range c.portCell {
		h, a := p.PortCoord(port)
		c.portCell[port] = int32(c.idx(0, h, a))
		c.portPF[port] = pflight{dh: int32(h), da: int32(a)}
	}
	return c
}

// Prewarm grows the packet pool, free list, per-port injection rings, and
// step scratch lists to hold n concurrently live packets (in flight plus
// queued) without any further allocation. Steady-state traffic below that
// high-water mark then runs with zero heap growth; benchmarks use it to
// prove the hot path is 0 B/op. It is purely a capacity hint — no observable
// state changes — and is safe to call at any point between Steps.
func (c *Core) Prewarm(n int) {
	if cap(c.pool) < n {
		pool := make([]Packet, len(c.pool), n)
		copy(pool, c.pool)
		c.pool = pool
		c.pstate = append(make([]pflight, 0, n), c.pstate...)
	}
	if cap(c.free) < n {
		c.free = append(make([]int32, 0, n), c.free...)
	}
	for i := range c.inq {
		c.inq[i].grow(n)
	}
}

// Params returns the switch geometry.
func (c *Core) Params() Params { return c.p }

// Cycle returns the number of Step calls so far.
func (c *Core) Cycle() int64 { return c.cycle }

// Stats returns a copy of the aggregated statistics.
func (c *Core) Stats() Stats { return c.stats }

// Busy reports whether any packet is in flight or queued for injection.
func (c *Core) Busy() bool { return c.flying > 0 || c.queued > 0 }

// QueueLen returns the injection queue depth of a port.
func (c *Core) QueueLen(port int) int { return c.inq[port].n }

// alloc stores pkt in the pool and returns its reference (index+1),
// reusing a freed slot when one exists. The hot struct-of-arrays columns
// (destination coordinates, deflection counter) are populated here; the
// telemetry in pool[ref-1] itself stays zeroed until eject/drop/snapshot
// materialises the authoritative values via packetAt.
func (c *Core) alloc(pkt Packet) int32 {
	st := c.portPF[pkt.Dst]
	if n := len(c.free); n > 0 {
		ref := c.free[n-1]
		c.free = c.free[:n-1]
		c.pool[ref-1] = pkt
		c.pstate[ref-1] = st
		return ref
	}
	c.pool = append(c.pool, pkt)
	c.pstate = append(c.pstate, st)
	return int32(len(c.pool))
}

// packetAt materialises the full Packet for an in-flight pool reference,
// folding the struct-of-arrays state back into the telemetry fields. It must
// not be used for queued references (their entry cycle is not yet set);
// queued packets are read straight from the pool, where Inject zeroed the
// counters.
func (c *Core) packetAt(ref int32) Packet {
	pkt := c.pool[ref-1]
	st := c.pstate[ref-1]
	pkt.Hops = int(int32(uint32(c.cycle) - st.entry - 1))
	pkt.Deflections = int(int32(st.defl))
	return pkt
}

// release returns a pool slot to the free list. The caller must have copied
// the packet out first: a Deliver/DropHook callback may Inject and reuse the
// slot (and grow the pool, invalidating pointers into it) immediately.
func (c *Core) release(ref int32) { c.free = append(c.free, ref) }

// Inject enqueues a packet for injection at its source port. The packet
// enters the fabric at the first cycle its injection node is free.
func (c *Core) Inject(pkt Packet) {
	if pkt.Src < 0 || pkt.Src >= c.p.Ports() || pkt.Dst < 0 || pkt.Dst >= c.p.Ports() {
		panic(fmt.Sprintf("dvswitch: port out of range: src=%d dst=%d ports=%d", pkt.Src, pkt.Dst, c.p.Ports()))
	}
	pkt.InjectCycle = c.cycle
	pkt.Hops = 0
	pkt.Deflections = 0
	c.qmask[pkt.Src>>6] |= 1 << (uint(pkt.Src) & 63)
	c.inq[pkt.Src].push(c.alloc(pkt))
	c.queued++
	c.stats.Injected++
	if c.obs != nil {
		c.obs.Injected.Inc()
	}
}

// InjectBatch queues a whole boundary batch, in order. It is semantically
// identical to calling Inject per element — injection-queue occupancy and
// RNG draw order are position-dependent, so the loop must stay strictly
// in order.
func (c *Core) InjectBatch(pkts []Packet) {
	for i := range pkts {
		c.Inject(pkts[i])
	}
}

func (c *Core) idx(cyl, h, a int) int {
	return (cyl*c.p.Heights+h)*c.p.Angles + a
}

// place writes a pool reference into the next-occupancy scratch and sets its
// occupancy bit (next cycle's iteration source and clearing worklist).
func (c *Core) place(idx int, ref int32) {
	c.next[idx] = ref
	c.nxtMask[idx>>6] |= 1 << (uint(idx) & 63)
}

// sigBit returns a cell's bit index into the strided signal bitmap.
func (c *Core) sigBit(cl, h, a int) int32 {
	stride := (c.cylN + 63) / 64
	return int32(cl*stride*64 + h*c.p.Angles + a)
}

// signal asserts the same-cylinder deflection signal on a cell.
func (c *Core) signal(idx int) {
	if c.mut&MutDropDeflectSignal != 0 {
		return
	}
	sb := c.tab[idx].sig
	c.sigMask[sb>>6] |= 1 << (uint32(sb) & 63)
}

// sigSet reports whether a cell's deflection signal is asserted this step.
func (c *Core) sigSet(idx int) bool {
	sb := c.tab[idx].sig
	return c.sigMask[sb>>6]>>(uint32(sb)&63)&1 != 0
}

// Step advances the fabric by one switch cycle: every in-flight packet moves
// one angle (descending, deflecting, circling, or ejecting), then injection
// ports fill any free outermost node.
//
// Only occupied nodes are visited: the active list is bucketed by cylinder
// and each bucket sorted ascending, which reproduces the dense scan order
// (inner cylinders first, then height-major within a cylinder) exactly —
// delivery order and fault-RNG draws are bit-identical to denseStep.
func (c *Core) Step() {
	if c.Dense {
		c.denseStep()
		return
	}
	if c.parEligible() {
		c.parStep()
		return
	}
	// Crossover: above ~half occupancy the bitmap walk saves nothing over
	// just scanning every node (moveCell on an empty cell is a load and a
	// branch). The dense scan visits nodes in exactly the order the bitmap
	// iteration produces, so switching keeps the step bit-identical. flying
	// equals the number of occupied cells (every in-flight packet occupies
	// exactly one node).
	if c.flying*2 >= len(c.grid) {
		c.denseStep()
		return
	}
	// Inner cylinders first: their same-cylinder movements assert the
	// deflection signals that outer cylinders must observe. Within a
	// cylinder, set bits come out in ascending cell order — the dense-scan
	// order — with no bucketing or sorting.
	if c.cleanPath() {
		c.sparseMovesClean()
	} else {
		for cl := c.levels; cl >= 0; cl-- {
			base := cl * c.cylN
			end := base + c.cylN
			for w := base >> 6; w<<6 < end; w++ {
				wb := w << 6
				mask := c.occMask[w]
				if wb < base {
					mask &^= 1<<uint(base-wb) - 1
				}
				if e := end - wb; e < 64 {
					mask &= 1<<uint(e) - 1
				}
				for mask != 0 {
					idx := wb + bits.TrailingZeros64(mask)
					mask &= mask - 1
					c.moveCell(idx, c.grid[idx])
				}
			}
		}
	}
	c.injectPhase()
	c.finishStep()
}

// cleanPath reports whether the hand-inlined move loops may be used: no
// planted mutation, no dead nodes, no probabilistic link faults, and no
// per-event instruments. The clean loops are line-for-line the same routing
// decisions as moveCell with every fault/mutation/obs branch deleted, so the
// choice is invisible in results — only in nanoseconds.
func (c *Core) cleanPath() bool {
	return c.mut == 0 && c.faulty == nil && c.frng == nil && c.obs == nil && c.heat == nil
}

// The clean move loops below hand-inline the routing decisions of moveCell
// (the specification of what one move does) with every fault, mutation, and
// obs branch deleted, the output ring split out of the inner-cylinder loop
// (so the ring test is not re-asked per packet), and the descend-vs-deflect
// choice made branchless: contention makes that branch a coin flip, and the
// mispredict penalty was the single largest cost in the step profile. The
// transformation is exact:
//
//	blocked = (bit mismatch) OR (deflection signal on the descend target)
//	target  = blocked ? deflect-cell : descend-cell   (CMOV)
//	defl   += blocked                                 (0 or 1)
//	sigbit |= blocked << target-bit                   (OR of 0 is a no-op)
//
// Slice headers are held in locals so the stores do not force reloads of c's
// fields each iteration; pstate is reloaded after every eject because
// Deliver may Inject and grow the pool.

// sparseMovesClean is the clean-path move phase over the occupancy bitmap.
// The routing bodies are written out in place (the compiler's inlining
// budget rejects them as a helper, and the call overhead is measurable at
// this grain).
func (c *Core) sparseMovesClean() {
	grid := c.grid
	next := c.next
	nxtMask := c.nxtMask
	sigMask := c.sigMask
	pstate := c.pstate
	tab := c.tab
	occ := c.occMask
	// Output ring (cylinder L): eject at the destination angle, else circle.
	base := c.levels * c.cylN
	end := base + c.cylN
	for w := base >> 6; w<<6 < end; w++ {
		wb := w << 6
		mask := occ[w]
		if wb < base {
			mask &^= 1<<uint(base-wb) - 1
		}
		if e := end - wb; e < 64 {
			mask &= 1<<uint(e) - 1
		}
		for mask != 0 {
			idx := wb + bits.TrailingZeros64(mask)
			mask &= mask - 1
			ref := grid[idx]
			t := &tab[idx]
			if pstate[ref-1].da == t.da {
				c.eject(ref)
				pstate = c.pstate
				continue
			}
			ni := t.next
			next[ni] = ref
			nxtMask[ni>>6] |= 1 << (uint32(ni) & 63)
			ns := t.nextSig
			sigMask[ns>>6] |= 1 << (uint32(ns) & 63)
		}
	}
	// Inner cylinders: descend or deflect, branchless.
	for cl := c.levels - 1; cl >= 0; cl-- {
		base := cl * c.cylN
		end := base + c.cylN
		for w := base >> 6; w<<6 < end; w++ {
			wb := w << 6
			mask := occ[w]
			if wb < base {
				mask &^= 1<<uint(base-wb) - 1
			}
			if e := end - wb; e < 64 {
				mask &= 1<<uint(e) - 1
			}
			for mask != 0 {
				idx := wb + bits.TrailingZeros64(mask)
				mask &= mask - 1
				ref := grid[idx]
				t := &tab[idx]
				f := &pstate[ref-1]
				d := t.desc
				ds := t.descSig
				blocked := uint64((f.dh>>t.bit)&1^t.hbit) | sigMask[ds>>6]>>(uint32(ds)&63)&1
				ni := t.defl
				if blocked == 0 {
					ni = d
				}
				f.defl += uint32(blocked)
				next[ni] = ref
				nxtMask[ni>>6] |= 1 << (uint32(ni) & 63)
				fs := t.deflSig
				sigMask[fs>>6] |= blocked << (uint32(fs) & 63)
			}
		}
	}
}

// denseMovesClean is the clean-path move phase over the full grid scan, with
// the same in-place routing bodies as sparseMovesClean.
func (c *Core) denseMovesClean() {
	grid := c.grid
	next := c.next
	nxtMask := c.nxtMask
	sigMask := c.sigMask
	pstate := c.pstate
	tab := c.tab
	// Output ring (cylinder L): eject at the destination angle, else circle.
	base := c.levels * c.cylN
	for j, ref := range grid[base : base+c.cylN] {
		if ref == 0 {
			continue
		}
		t := &tab[base+j]
		if pstate[ref-1].da == t.da {
			c.eject(ref)
			pstate = c.pstate
			continue
		}
		ni := t.next
		next[ni] = ref
		nxtMask[ni>>6] |= 1 << (uint32(ni) & 63)
		ns := t.nextSig
		sigMask[ns>>6] |= 1 << (uint32(ns) & 63)
	}
	// Inner cylinders: descend or deflect, branchless.
	for cl := c.levels - 1; cl >= 0; cl-- {
		base := cl * c.cylN
		for j, ref := range grid[base : base+c.cylN] {
			if ref == 0 {
				continue
			}
			t := &tab[base+j]
			f := &pstate[ref-1]
			d := t.desc
			ds := t.descSig
			blocked := uint64((f.dh>>t.bit)&1^t.hbit) | sigMask[ds>>6]>>(uint32(ds)&63)&1
			ni := t.defl
			if blocked == 0 {
				ni = d
			}
			f.defl += uint32(blocked)
			next[ni] = ref
			nxtMask[ni>>6] |= 1 << (uint32(ni) & 63)
			fs := t.deflSig
			sigMask[fs>>6] |= blocked << (uint32(fs) & 63)
		}
	}
}

// moveCell advances the packet ref occupying node idx by one angle, using
// the precomputed routing table — no division, no coordinate arithmetic,
// and only the struct-of-arrays columns of the packet are touched. It is
// the per-node routing logic shared by the sparse Step and the dense
// reference scan, and is bit-identical to the legacy arithmetic path
// (moveOne), which it delegates to when a routing mutation is planted.
func (c *Core) moveCell(idx int, ref int32) {
	if c.mut&(MutStickyOutputRing|MutBitOffByOne) != 0 {
		c.moveOne(int(c.tab[idx].cyl), idx)
		return
	}
	t := &c.tab[idx]
	f := &c.pstate[ref-1]
	if t.desc < 0 {
		// Output ring: circle to the destination angle, then eject.
		if f.da == t.da {
			c.eject(ref)
			return
		}
		ni := int(t.next)
		if c.faulty != nil && c.faulty[ni] {
			c.drop(ref)
			return
		}
		if c.frng != nil && c.linkFault(ref) {
			return
		}
		c.place(ni, ref)
		c.signal(ni)
		return
	}
	if c.frng != nil && c.linkFault(ref) {
		return
	}
	if (f.dh>>t.bit)&1 == t.hbit {
		d := int(t.desc)
		if !c.sigSet(d) && (c.faulty == nil || !c.faulty[d]) {
			// Descend: bit matches and no deflection signal.
			c.place(d, ref)
			return
		}
	}
	// Deflect within the cylinder, toggling the bit under
	// resolution (preserves the already-resolved prefix).
	ni := int(t.defl)
	if c.faulty != nil && c.faulty[ni] {
		// Both legal moves are dead: the bufferless fabric
		// cannot hold the packet.
		c.drop(ref)
		return
	}
	f.defl++
	if c.obs != nil {
		c.obs.Deflected.Inc()
		c.obs.DeflectByCyl[t.cyl].Inc()
	}
	c.heat.Add(int(t.cyl), idx%c.p.Angles)
	c.place(ni, ref)
	c.signal(ni)
}

// moveOne is the legacy arithmetic routing path, kept verbatim (modulo the
// struct-of-arrays counters) because the planted routing mutations
// (MutBitOffByOne, MutStickyOutputRing) are expressed against it. Outside
// mutation testing, moveCell is the only caller-facing path; the golden
// differential tests pin the two bit-identical.
func (c *Core) moveOne(cl, idx int) {
	ref := c.grid[idx]
	if ref == 0 {
		return
	}
	st := &c.pstate[ref-1]
	f := &c.pool[ref-1]
	p := c.p
	A := p.Angles
	L := c.levels
	h := (idx / A) % p.Heights
	a := idx % A
	na := (a + 1) % A
	dh, da := p.PortCoord(f.Dst)
	if cl == L {
		// Output ring: circle to the destination angle, then eject.
		if a == da && c.mut&MutStickyOutputRing == 0 {
			c.eject(ref)
			return
		}
		if c.isFaulty(cl, h, na) {
			c.drop(ref)
			return
		}
		if c.linkFault(ref) {
			return
		}
		ni := c.idx(cl, h, na)
		c.place(ni, ref)
		c.signal(ni)
		return
	}
	bit := uint(L - 1 - cl) // height bit resolved by this cylinder
	if c.mut&MutBitOffByOne != 0 && L > 1 {
		bit = uint((int(bit) + 1) % L)
	}
	if c.linkFault(ref) {
		return
	}
	if (h>>bit)&1 == (dh>>bit)&1 && !c.sigSet(c.idx(cl+1, h, na)) &&
		!c.isFaulty(cl+1, h, na) {
		// Descend: bit matches and no deflection signal.
		c.place(c.idx(cl+1, h, na), ref)
		return
	}
	// Deflect within the cylinder, toggling the bit under
	// resolution (preserves the already-resolved prefix).
	h2 := h ^ (1 << bit)
	if c.isFaulty(cl, h2, na) {
		// Both legal moves are dead: the bufferless fabric
		// cannot hold the packet.
		c.drop(ref)
		return
	}
	st.defl++
	if c.obs != nil {
		c.obs.Deflected.Inc()
		c.obs.DeflectByCyl[cl].Inc()
	}
	c.heat.Add(cl, a)
	ni := c.idx(cl, h2, na)
	c.place(ni, ref)
	c.signal(ni)
}

// injectPhase fills free entry nodes from the waiting ports, visited in
// ascending port order (the dense scan order over cylinder 0). The waiting
// set is a bitmap, so the visit order is sorted for free; a port's bit stays
// set while its queue is non-empty (busy entry node, or the node is down).
func (c *Core) injectPhase() {
	if c.queued == 0 {
		return
	}
	for w, mask := range c.qmask {
		if mask == 0 {
			continue
		}
		wb := w << 6
		for m := mask; m != 0; m &= m - 1 {
			port := wb + bits.TrailingZeros64(m)
			q := &c.inq[port]
			at := int(c.portCell[port])
			if c.next[at] == 0 && (c.faulty == nil || !c.faulty[at]) {
				ref := q.pop()
				c.queued--
				c.flying++
				c.stats.QueuedCycles += c.cycle - c.pool[ref-1].InjectCycle
				c.pstate[ref-1].entry = uint32(c.cycle)
				c.place(at, ref)
			}
			if q.n == 0 {
				c.qmask[w] &^= 1 << uint(port-wb)
			}
		}
	}
}

// finishStep publishes the next occupancy and resets the scratch state by
// clearing exactly the cells this step touched (no full-array wipes).
func (c *Core) finishStep() {
	c.grid, c.next = c.next, c.grid
	// c.next now holds the pre-step occupancy; its stale cells are exactly
	// the set bits of the old occupancy mask. At high occupancy a wholesale
	// memclr beats per-bit stores (the untouched cells are already zero, so
	// clearing everything is idempotent); below that, clear bit by bit. The
	// signal bitmap is a few words — always cleared wholesale.
	if c.flying*4 >= len(c.next) {
		clear(c.next)
		clear(c.occMask)
	} else {
		for w, mask := range c.occMask {
			if mask != 0 {
				wb := w << 6
				for ; mask != 0; mask &= mask - 1 {
					c.next[wb+bits.TrailingZeros64(mask)] = 0
				}
				c.occMask[w] = 0
			}
		}
	}
	clear(c.sigMask)
	c.occMask, c.nxtMask = c.nxtMask, c.occMask
	c.cycle++
	if c.CheckInvariants {
		c.verifyPrefixInvariant()
	}
	if c.OnCycleEnd != nil {
		c.OnCycleEnd(c)
	}
}

// denseStep is the seed implementation's full-fabric scan: every node of
// every cylinder is visited each cycle, occupied or not. It shares moveOne,
// injectPhase, and finishStep with the sparse Step — the only difference is
// the iteration source — and is kept as the reference half of the golden
// differential tests (see diff_test.go) and as the dvswitch_dense build-tag
// default.
func (c *Core) denseStep() {
	if c.cleanPath() {
		c.denseMovesClean()
	} else {
		for cl := c.levels; cl >= 0; cl-- {
			base := cl * c.cylN
			for j, ref := range c.grid[base : base+c.cylN] {
				if ref != 0 {
					c.moveCell(base+j, ref)
				}
			}
		}
	}
	c.injectPhase()
	c.finishStep()
}

// verifyPrefixInvariant panics if any in-flight packet violates the
// resolved-prefix property that makes the self-routing correct: at cylinder
// cl, the top cl bits of the packet's height equal its destination's.
func (c *Core) verifyPrefixInvariant() {
	p := c.p
	L := c.levels
	for cl := 0; cl <= L; cl++ {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				ref := c.grid[c.idx(cl, h, a)]
				if ref == 0 {
					continue
				}
				dh, _ := p.PortCoord(c.pool[ref-1].Dst)
				if cl == 0 {
					continue
				}
				shift := uint(L - cl)
				if h>>shift != dh>>shift {
					panic(fmt.Sprintf(
						"dvswitch: prefix invariant violated at (c=%d h=%d a=%d): dst height %d",
						cl, h, a, dh))
				}
			}
		}
	}
}

func (c *Core) eject(ref int32) {
	pkt := c.packetAt(ref)
	c.release(ref)
	c.flying--
	lat := c.cycle + 1 - pkt.InjectCycle
	c.stats.Delivered++
	c.stats.TotalHops += int64(pkt.Hops)
	c.stats.TotalDeflected += int64(pkt.Deflections)
	c.stats.recordLatency(lat)
	if c.obs != nil {
		c.obs.Delivered.Inc()
		c.obs.Latency.Observe(lat)
	}
	if c.Deliver != nil {
		c.Deliver(pkt, c.cycle+1)
		if c.mut&MutDoubleDeliver != 0 {
			c.Deliver(pkt, c.cycle+1)
		}
	}
}

// SetFaulty marks a switching node dead (or repairs it). Packets route
// around dead nodes by deflection where possible; a packet with no live
// move is dropped and counted in Stats.Dropped.
func (c *Core) SetFaulty(cyl, h, a int, dead bool) {
	if c.faulty == nil {
		c.faulty = make([]bool, len(c.grid))
	}
	c.faulty[c.idx(cyl, h, a)] = dead
}

func (c *Core) isFaulty(cyl, h, a int) bool {
	return c.faulty != nil && c.faulty[c.idx(cyl, h, a)]
}

// drop discards a packet lost to a fault.
func (c *Core) drop(ref int32) {
	pkt := c.packetAt(ref)
	c.release(ref)
	c.flying--
	if c.mut&MutSkipDropCount == 0 {
		c.stats.Dropped++
	}
	if c.obs != nil {
		c.obs.Dropped.Inc()
	}
	if c.DropHook != nil {
		c.DropHook(pkt)
	}
}

// ForEachInFlight calls fn for every packet currently occupying a switching
// node, in dense-scan order (cylinder-major ascending, then height, then
// angle) — the same order on the sparse and dense paths, so an invariant
// sweep sees identical sequences from both. id is the packet's pool
// reference: stable for the packet's whole flight and never shared by two
// concurrently in-flight packets, which makes it a duplication witness.
func (c *Core) ForEachInFlight(fn func(id int32, cyl, h, a int, pkt Packet)) {
	p := c.p
	for cl := 0; cl <= c.levels; cl++ {
		for h := 0; h < p.Heights; h++ {
			for a := 0; a < p.Angles; a++ {
				if ref := c.grid[c.idx(cl, h, a)]; ref != 0 {
					fn(ref, cl, h, a, c.packetAt(ref))
				}
			}
		}
	}
}

// RunUntilIdle steps until no packets remain (or maxCycles elapse) and
// returns the number of cycles stepped. It is a convenience for tests and
// traffic studies.
func (c *Core) RunUntilIdle(maxCycles int64) int64 {
	var n int64
	for c.Busy() && n < maxCycles {
		c.Step()
		n++
	}
	return n
}
