package dvswitch

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// driveCore runs a deterministic closed-loop workload — every delivery
// re-injects toward a destination drawn from a delivery-order-seeded RNG —
// so any divergence in eject order, routing, or stats snowballs into the
// digest. Returns the final stats and a delivery-order digest.
func driveCore(c *Core, cycles int, load float64) (Stats, uint64) {
	rng := sim.NewRNG(11)
	ports := c.Params().Ports()
	var digest uint64
	c.Deliver = func(pkt Packet, cycle int64) {
		digest = digest*1099511628211 ^ uint64(pkt.Src)<<32 ^ uint64(pkt.Dst)<<16 ^ uint64(cycle)
		c.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(ports)})
	}
	for cy := 0; cy < cycles; cy++ {
		for src := 0; src < ports; src++ {
			if rng.Float64() < load {
				c.Inject(Packet{Src: src, Dst: rng.Intn(ports)})
			}
		}
		c.Step()
	}
	return c.Stats(), digest
}

// TestParStepMatchesSerial pins the tentpole's bit-identity claim at the
// core level: the fanned move phase must reproduce the serial step's stats
// and delivery sequence exactly, at several worker counts, across geometries,
// with the occupancy gate forced open so every cycle exercises the parallel
// path.
func TestParStepMatchesSerial(t *testing.T) {
	geoms := []Params{
		{Heights: 8, Angles: 4},
		{Heights: 32, Angles: 4},
	}
	for _, p := range geoms {
		ref := NewCore(p)
		wantStats, wantDigest := driveCore(ref, 300, 0.7)
		if wantStats.Delivered == 0 {
			t.Fatalf("geom %+v: reference run delivered nothing", p)
		}
		for _, workers := range []int{2, 4, 8} {
			pool := sim.NewFanPool(workers)
			if pool.Workers() == 1 {
				continue // single-CPU machine: nothing to compare
			}
			c := NewCore(p)
			c.SetFanPool(pool, -1)
			gotStats, gotDigest := driveCore(c, 300, 0.7)
			pool.Stop()
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Errorf("geom %+v workers=%d: stats diverge from serial:\n got %+v\nwant %+v",
					p, workers, gotStats, wantStats)
			}
			if gotDigest != wantDigest {
				t.Errorf("geom %+v workers=%d: delivery digest %x != serial %x",
					p, workers, gotDigest, wantDigest)
			}
		}
	}
}

// TestParStepOccupancyGate checks the threshold plumbing: with a high gate
// the parallel path must never engage (and results still match), with a
// negative gate it always does.
func TestParStepOccupancyGate(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	ref := NewCore(p)
	wantStats, wantDigest := driveCore(ref, 200, 0.5)
	pool := sim.NewFanPool(4)
	defer pool.Stop()
	for _, gate := range []int{1 << 30, -1, 0} {
		c := NewCore(p)
		c.SetFanPool(pool, gate)
		gotStats, gotDigest := driveCore(c, 200, 0.5)
		if !reflect.DeepEqual(gotStats, wantStats) || gotDigest != wantDigest {
			t.Errorf("gate=%d: run diverges from serial (stats eq=%v digest %x vs %x)",
				gate, reflect.DeepEqual(gotStats, wantStats), gotDigest, wantDigest)
		}
	}
}

// BenchmarkParallelRun measures the saturated move phase at several pool
// widths on the scale-study geometry (256 ports). The b.N loop holds the
// fabric at steady closed-loop saturation, the regime the parallel kernel
// exists for; /serial is the same workload through the unmodified path.
func BenchmarkParallelRun(b *testing.B) {
	p := Params{Heights: 64, Angles: 4}
	bench := func(b *testing.B, pool *sim.FanPool) {
		c := NewCore(p)
		if pool != nil {
			c.SetFanPool(pool, -1)
		}
		rng := sim.NewRNG(3)
		ports := p.Ports()
		c.Deliver = func(pkt Packet, _ int64) {
			c.Inject(Packet{Src: pkt.Dst, Dst: rng.Intn(ports)})
		}
		c.Prewarm(4 * ports)
		for i := 0; i < 4*ports; i++ {
			c.Inject(Packet{Src: rng.Intn(ports), Dst: rng.Intn(ports)})
		}
		for i := 0; i < 64; i++ {
			c.Step()
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			c.Step()
		}
	}
	b.Run("serial", func(b *testing.B) { bench(b, nil) })
	for _, w := range []int{2, 4, 8} {
		pool := sim.NewFanPool(w)
		if pool.Workers() != w {
			pool.Stop()
			continue
		}
		b.Run("workers"+string(rune('0'+w)), func(b *testing.B) { bench(b, pool) })
		pool.Stop()
	}
}
