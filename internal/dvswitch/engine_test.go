package dvswitch

import (
	"testing"

	"repro/internal/sim"
)

func TestEngineDeliversInVirtualTime(t *testing.T) {
	k := sim.NewKernel()
	e := NewEngine(k, Params{Heights: 8, Angles: 4}, DefaultCycleTime)
	var at sim.Time
	var got *Packet
	e.OnDeliver(func(pkt Packet) { p := pkt; got = &p; at = k.Now() })
	k.Spawn("src", func(p *sim.Proc) {
		p.Wait(100 * sim.Nanosecond)
		e.Inject(Packet{Src: 3, Dst: 17, Payload: 42})
	})
	k.Run()
	if got == nil {
		t.Fatal("no delivery")
	}
	if got.Payload != 42 || got.Dst != 17 {
		t.Fatalf("wrong packet: %+v", got)
	}
	want := 100*sim.Nanosecond + sim.Time(1+UnloadedFlightCycles(e.core.p, 3, 17))*DefaultCycleTime
	// Delivery lands on the cycle grid, so allow up to one cycle of
	// alignment skew relative to the injection instant.
	if at < want-DefaultCycleTime || at > want+DefaultCycleTime {
		t.Fatalf("delivered at %v, want about %v", at, want)
	}
}

func TestEnginePumpDisarmsWhenIdle(t *testing.T) {
	k := sim.NewKernel()
	e := NewEngine(k, Params{Heights: 4, Angles: 2}, DefaultCycleTime)
	deliveries := 0
	e.OnDeliver(func(Packet) { deliveries++ })
	k.Spawn("src", func(p *sim.Proc) {
		e.Inject(Packet{Src: 0, Dst: 7})
		p.Wait(10 * sim.Microsecond) // long idle gap
		e.Inject(Packet{Src: 0, Dst: 7})
	})
	end := k.Run()
	if deliveries != 2 {
		t.Fatalf("deliveries = %d", deliveries)
	}
	// End time is bounded by the second injection plus flight, far less than
	// continuous pumping would produce.
	if end > 20*sim.Microsecond {
		t.Fatalf("end = %v; pump seems to have free-run", end)
	}
}

func TestFastModelMatchesCoreUnloaded(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	for src := 0; src < p.Ports(); src += 3 {
		for dst := 0; dst < p.Ports(); dst += 5 {
			// Core measurement.
			c := NewCore(p)
			var coreLat int64 = -1
			c.Deliver = func(pkt Packet, cycle int64) { coreLat = cycle - pkt.InjectCycle }
			c.Inject(Packet{Src: src, Dst: dst})
			c.RunUntilIdle(1000)

			// Fast model measurement with deflection sampling disabled via
			// a fresh RNG whose first draws exceed the base probability is
			// not reliable; instead assert the deterministic part.
			base := 1 + UnloadedFlightCycles(p, src, dst)
			if coreLat != base {
				t.Fatalf("src=%d dst=%d: core=%d formula=%d", src, dst, coreLat, base)
			}
		}
	}
}

func TestFastModelDelivery(t *testing.T) {
	k := sim.NewKernel()
	m := NewFastModel(k, Params{Heights: 8, Angles: 4}, DefaultCycleTime, sim.NewRNG(1))
	const n = 1000
	delivered := 0
	m.OnDeliver(func(pkt Packet) {
		if int(pkt.Payload) != pkt.Dst {
			t.Errorf("misrouted %+v", pkt)
		}
		delivered++
	})
	rng := sim.NewRNG(2)
	k.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			dst := rng.Intn(m.Ports())
			m.Inject(Packet{Src: rng.Intn(m.Ports()), Dst: dst, Payload: uint64(dst)})
			p.Wait(sim.Nanosecond)
		}
	})
	k.Run()
	if delivered != n {
		t.Fatalf("delivered %d, want %d", delivered, n)
	}
	st := m.FabricStats()
	if st.Delivered != n {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFastModelPortSerialisation(t *testing.T) {
	// Many packets from one source port must take at least 1 cycle each.
	k := sim.NewKernel()
	m := NewFastModel(k, Params{Heights: 8, Angles: 4}, DefaultCycleTime, sim.NewRNG(1))
	var last sim.Time
	m.OnDeliver(func(Packet) { last = k.Now() })
	const n = 500
	k.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m.Inject(Packet{Src: 0, Dst: 9})
		}
	})
	k.Run()
	if min := sim.Time(n) * DefaultCycleTime; last < min {
		t.Fatalf("drained %d same-port packets in %v, min is %v", n, last, min)
	}
}

func TestFastModelDeterminism(t *testing.T) {
	run := func() sim.Time {
		k := sim.NewKernel()
		m := NewFastModel(k, Params{Heights: 8, Angles: 4}, DefaultCycleTime, sim.NewRNG(5))
		rng := sim.NewRNG(6)
		m.OnDeliver(func(Packet) {})
		k.Spawn("src", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				m.Inject(Packet{Src: rng.Intn(32), Dst: rng.Intn(32)})
				p.Wait(sim.Time(rng.Intn(5)) * sim.Nanosecond)
			}
		})
		return k.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// TestFastModelLoadedCalibration runs identical random traffic through both
// engines and requires the fast model's loaded mean latency to stay within
// a small factor of the cycle-accurate ground truth (the calibration claim
// DESIGN.md makes).
func TestFastModelLoadedCalibration(t *testing.T) {
	p := Params{Heights: 8, Angles: 4}
	type traffic struct{ src, dst int }
	rng := sim.NewRNG(41)
	var plan []traffic
	for i := 0; i < 4000; i++ {
		plan = append(plan, traffic{rng.Intn(p.Ports()), rng.Intn(p.Ports())})
	}
	run := func(fab func(k *sim.Kernel) Fabric) Stats {
		k := sim.NewKernel()
		f := fab(k)
		f.OnDeliver(func(Packet) {})
		k.Spawn("src", func(pr *sim.Proc) {
			for i, tr := range plan {
				f.Inject(Packet{Src: tr.src, Dst: tr.dst})
				if i%8 == 7 {
					pr.Wait(4 * DefaultCycleTime) // ~0.25 load per port overall
				}
			}
		})
		k.Run()
		return f.FabricStats()
	}
	core := run(func(k *sim.Kernel) Fabric { return NewEngine(k, p, DefaultCycleTime) })
	fast := run(func(k *sim.Kernel) Fabric {
		return NewFastModel(k, p, DefaultCycleTime, sim.NewRNG(2))
	})
	if core.Delivered != int64(len(plan)) || fast.Delivered != int64(len(plan)) {
		t.Fatalf("deliveries: core %d fast %d", core.Delivered, fast.Delivered)
	}
	ratio := fast.MeanLatency() / core.MeanLatency()
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("loaded latency calibration off: core %.1f vs fast %.1f cycles (ratio %.2f)",
			core.MeanLatency(), fast.MeanLatency(), ratio)
	}
}
