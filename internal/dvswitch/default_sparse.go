//go:build !dvswitch_dense

package dvswitch

// denseByDefault selects the Step implementation new Cores start with. The
// default build uses the sparse active-list core; building with
// -tags dvswitch_dense flips every Core back to the seed's full-fabric scan
// (bit-identical results, O(fabric) per cycle) as a rollback switch.
const denseByDefault = false
