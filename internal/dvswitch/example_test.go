package dvswitch_test

import (
	"fmt"

	"repro/internal/dvswitch"
)

// Drive the cycle-accurate switch directly: build a 32-port fabric, inject
// a packet, and step until it ejects.
func ExampleCore() {
	p := dvswitch.Params{Heights: 8, Angles: 4}
	c := dvswitch.NewCore(p)
	c.Deliver = func(pkt dvswitch.Packet, cycle int64) {
		fmt.Printf("packet delivered to port %d after %d cycles (%d hops, %d deflections)\n",
			pkt.Dst, cycle-pkt.InjectCycle, pkt.Hops, pkt.Deflections)
	}
	c.Inject(dvswitch.Packet{Src: 0, Dst: 21, Payload: 42})
	c.RunUntilIdle(1000)
	// Output:
	// packet delivered to port 21 after 7 cycles (5 hops, 2 deflections)
}

// The unloaded-latency formula matches the cycle-accurate core exactly.
func ExampleUnloadedFlightCycles() {
	p := dvswitch.Params{Heights: 8, Angles: 4}
	fmt.Println("flight cycles 0->21:", dvswitch.UnloadedFlightCycles(p, 0, 21))
	// Output:
	// flight cycles 0->21: 6
}
