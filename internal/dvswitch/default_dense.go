//go:build dvswitch_dense

package dvswitch

// denseByDefault: this build runs every Core on the dense full-fabric scan
// (the seed implementation). See default_sparse.go.
const denseByDefault = true
