package dvswitch

import (
	"math"

	"repro/internal/faultplan"
	"repro/internal/sim"
)

// FaultProbs configures probabilistic per-link-traversal faults for the
// cycle-accurate Core. Probabilities apply independently to every link a
// packet traverses (one draw per hop), inside the cycle window
// [StartCycle, EndCycle); EndCycle == 0 means "until the end of the run".
type FaultProbs struct {
	// Drop is the per-link-traversal probability of losing the packet.
	Drop float64
	// Corrupt is the per-link-traversal probability of flipping one payload
	// bit. Corrupt packets are still delivered; the receiving VIC's CRC model
	// discards them.
	Corrupt float64
	// StartCycle and EndCycle bound the window in switch cycles.
	StartCycle, EndCycle int64
}

// SetFaultProbs installs probabilistic link faults on the core, drawing every
// fate from rng. Passing a zero FaultProbs (or nil rng) disables them. The
// core consumes the stream in its deterministic fabric-iteration order, so
// fault outcomes are bit-reproducible for a fixed traffic pattern.
func (c *Core) SetFaultProbs(fp FaultProbs, rng *sim.RNG) {
	c.fp = fp
	if fp.Drop <= 0 && fp.Corrupt <= 0 {
		c.frng = nil
		return
	}
	c.frng = rng
}

// faultsOn reports whether probabilistic link faults apply this cycle.
func (c *Core) faultsOn() bool {
	if c.frng == nil || c.cycle < c.fp.StartCycle {
		return false
	}
	return c.fp.EndCycle == 0 || c.cycle < c.fp.EndCycle
}

// linkFault applies the per-link-traversal fault draws to the pooled packet
// about to traverse one link, reporting true when the packet was dropped. A
// corrupted packet keeps flying with one payload bit flipped and Corrupt set.
func (c *Core) linkFault(ref int32) bool {
	if !c.faultsOn() {
		return false
	}
	if c.fp.Drop > 0 && c.frng.Float64() < c.fp.Drop {
		c.drop(ref)
		return true
	}
	if c.fp.Corrupt > 0 && c.frng.Float64() < c.fp.Corrupt {
		f := &c.pool[ref-1]
		f.Payload ^= 1 << (c.frng.Uint64() & 63)
		f.Corrupt = true
		c.stats.Corrupted++
	}
	return false
}

// ApplyPlan wires a fault plan into the cycle-accurate engine: probabilistic
// link faults go to the core (window converted from virtual time to cycles),
// and every dead-node kill/revive is scheduled on the kernel. Dead nodes
// outside this switch's geometry are ignored so one plan can serve several
// fabric sizes. Times already in the past fire immediately.
func (e *Engine) ApplyPlan(p *faultplan.Plan) {
	if !p.Active() {
		return
	}
	if p.DropProb > 0 || p.CorruptProb > 0 {
		fp := FaultProbs{
			Drop:       p.DropProb,
			Corrupt:    p.CorruptProb,
			StartCycle: int64(p.Window.Start / e.ct),
		}
		if p.Window.End > 0 {
			fp.EndCycle = int64(p.Window.End / e.ct)
			if fp.EndCycle <= fp.StartCycle {
				fp.EndCycle = fp.StartCycle + 1
			}
		}
		e.core.SetFaultProbs(fp, p.EntityRNG("dvswitch-core", 0))
	}
	par := e.core.p
	for _, d := range p.DeadNodes {
		if d.Cyl >= par.Cylinders() || d.Height >= par.Heights || d.Angle >= par.Angles {
			continue
		}
		d := d
		e.k.At(clampNow(e.k, d.Kill), func() {
			e.core.SetFaulty(d.Cyl, d.Height, d.Angle, true)
		})
		if d.Revive > 0 {
			e.k.At(clampNow(e.k, d.Revive), func() {
				e.core.SetFaulty(d.Cyl, d.Height, d.Angle, false)
			})
		}
	}
}

// Core exposes the engine's underlying cycle-accurate core (telemetry and
// direct fault control for tests and the dvswitchsim CLI).
func (e *Engine) Core() *Core { return e.core }

// ApplyPlan wires a fault plan into the fast model. The model has no
// individual links or switching nodes, so per-link probabilities are
// compounded over each packet's flight-hop count into a single per-packet
// fate, drawn from an independent per-source-port RNG stream; dead-node
// entries are ignored. The window is evaluated at injection time.
func (m *FastModel) ApplyPlan(p *faultplan.Plan) {
	if !p.Active() || (p.DropProb <= 0 && p.CorruptProb <= 0) {
		return
	}
	m.fpl = p
	m.frng = make([]*sim.RNG, m.p.Ports())
	for i := range m.frng {
		m.frng[i] = p.EntityRNG("dvport", i)
	}
}

// compound converts a per-link probability into a per-packet probability over
// n link traversals: 1 - (1-p)^n.
func compound(p float64, n int64) float64 {
	return 1 - math.Pow(1-p, float64(n))
}

// clampNow returns at, but never earlier than the kernel's current time
// (sim.Kernel.At panics on past times).
func clampNow(k *sim.Kernel, at sim.Time) sim.Time {
	if now := k.Now(); at < now {
		return now
	}
	return at
}
