package dvswitch

import (
	"testing"

	"repro/internal/sim"
)

// mpHarness builds an n-plane fast-model fabric on a fresh kernel.
func mpHarness(t *testing.T, planes int, policy PlanePolicy, geom Params) (*sim.Kernel, *MultiPlane) {
	t.Helper()
	k := sim.NewKernel()
	rng := sim.NewRNG(11)
	fabrics := make([]Fabric, planes)
	for i := range fabrics {
		fabrics[i] = NewFastModel(k, geom, DefaultCycleTime, rng.Split())
	}
	return k, NewMultiPlane(fabrics, policy)
}

// TestPlanePolicyParse pins the config spellings and String round trip.
func TestPlanePolicyParse(t *testing.T) {
	cases := []struct {
		in   string
		want PlanePolicy
		ok   bool
	}{
		{"", PlaneHash, true},
		{"hash", PlaneHash, true},
		{"rr", PlaneRR, true},
		{"round-robin", PlaneRR, true},
		{"bogus", PlaneHash, false},
	}
	for _, cse := range cases {
		got, err := ParsePlanePolicy(cse.in)
		if cse.ok && (err != nil || got != cse.want) {
			t.Errorf("ParsePlanePolicy(%q) = %v, %v; want %v", cse.in, got, err, cse.want)
		}
		if !cse.ok && err == nil {
			t.Errorf("ParsePlanePolicy(%q) accepted", cse.in)
		}
	}
	if PlaneHash.String() != "hash" || PlaneRR.String() != "rr" {
		t.Errorf("String(): %q %q", PlaneHash, PlaneRR)
	}
}

// TestPlaneHashPinned pins the plane-selection hash: it is part of the
// determinism contract (changing it changes every multi-plane Report), so an
// accidental edit must fail loudly here, not as a silent golden drift.
func TestPlaneHashPinned(t *testing.T) {
	cases := []struct {
		src, dst int
		want     uint64
	}{
		{0, 0, planeHash(0, 0)}, // self-consistency anchor for the table below
		{0, 1, 0x5692161d100b05e5},
		{1, 0, 0xd820b7e910b0f93f},
		{31, 17, 0x67ac4f833d0bb2c3},
	}
	for _, cse := range cases[1:] {
		if got := planeHash(cse.src, cse.dst); got != cse.want {
			t.Errorf("planeHash(%d, %d) = %#x, want %#x", cse.src, cse.dst, got, cse.want)
		}
	}
	if planeHash(0, 1) == planeHash(1, 0) {
		t.Error("hash is symmetric in (src, dst); pairs would collide")
	}
}

// TestMultiPlaneSpreadsAndMerges drives uniform traffic through a 4-plane
// fabric under both policies: every plane must carry traffic, the merged
// stats must equal the per-plane sums, and all packets must deliver.
func TestMultiPlaneSpreadsAndMerges(t *testing.T) {
	geom := Params{Heights: 4, Angles: 4}
	for _, policy := range []PlanePolicy{PlaneHash, PlaneRR} {
		k, m := mpHarness(t, 4, policy, geom)
		delivered := 0
		m.OnDeliver(func(Packet) { delivered++ })
		rng := sim.NewRNG(5)
		const pkts = 2000
		for i := 0; i < pkts; i++ {
			m.Inject(Packet{Src: rng.Intn(geom.Ports()), Dst: rng.Intn(geom.Ports())})
		}
		k.Run()
		if delivered != pkts {
			t.Fatalf("%v: delivered %d of %d", policy, delivered, pkts)
		}
		st := m.FabricStats()
		if st.Injected != pkts || st.Delivered != pkts {
			t.Errorf("%v: merged stats %+v", policy, st)
		}
		var sum Stats
		for _, pl := range m.planes {
			pst := pl.FabricStats()
			if pst.Injected == 0 {
				t.Errorf("%v: a plane carried no traffic", policy)
			}
			sum.Merge(pst)
		}
		if sum != st {
			t.Errorf("%v: merge mismatch:\nmerged: %+v\nsummed: %+v", policy, st, sum)
		}
	}
}

// TestMultiPlaneHashPairAffinity: under PlaneHash every packet of a port
// pair rides the same plane; under PlaneRR a single pair spreads across all
// planes (that is the point of the policy).
func TestMultiPlaneHashPairAffinity(t *testing.T) {
	geom := Params{Heights: 4, Angles: 4}
	count := func(policy PlanePolicy) map[int]int64 {
		_, m := mpHarness(t, 4, policy, geom)
		for i := 0; i < 64; i++ {
			m.Inject(Packet{Src: 3, Dst: 9})
		}
		used := map[int]int64{}
		for pl, f := range m.planes {
			if st := f.FabricStats(); st.Injected > 0 {
				used[pl] = st.Injected
			}
		}
		return used
	}
	if used := count(PlaneHash); len(used) != 1 {
		t.Errorf("PlaneHash spread one pair over %d planes: %v", len(used), used)
	}
	used := count(PlaneRR)
	if len(used) != 4 {
		t.Fatalf("PlaneRR used %d of 4 planes: %v", len(used), used)
	}
	for pl, n := range used {
		if n != 16 {
			t.Errorf("PlaneRR plane %d got %d of 64 packets, want 16", pl, n)
		}
	}
}

// TestMultiPlaneBatchMatchesPerPacket: InjectBatch must be semantically
// identical to per-element Inject — same per-plane assignment, same
// per-plane order, hence identical merged stats and delivery sets.
func TestMultiPlaneBatchMatchesPerPacket(t *testing.T) {
	geom := Params{Heights: 4, Angles: 4}
	mkTraffic := func() []Packet {
		rng := sim.NewRNG(17)
		pkts := make([]Packet, 1500)
		for i := range pkts {
			pkts[i] = Packet{Src: rng.Intn(geom.Ports()), Dst: rng.Intn(geom.Ports()),
				Header: uint64(i)}
		}
		return pkts
	}
	for _, policy := range []PlanePolicy{PlaneHash, PlaneRR} {
		run := func(batch bool) (Stats, map[uint64]bool) {
			k, m := mpHarness(t, 3, policy, geom)
			got := map[uint64]bool{}
			m.OnDeliver(func(pkt Packet) { got[pkt.Header] = true })
			pkts := mkTraffic()
			if batch {
				m.InjectBatch(pkts)
			} else {
				for _, pkt := range pkts {
					m.Inject(pkt)
				}
			}
			k.Run()
			return m.FabricStats(), got
		}
		bSt, bGot := run(true)
		pSt, pGot := run(false)
		if bSt != pSt {
			t.Errorf("%v: stats diverge:\nbatch:      %+v\nper-packet: %+v", policy, bSt, pSt)
		}
		if len(bGot) != len(pGot) {
			t.Errorf("%v: delivery sets diverge: %d vs %d", policy, len(bGot), len(pGot))
		}
	}
}

// TestMultiPlaneDeterministic: two identical multi-plane runs produce
// identical delivery sequences and stats, for both engines behind the planes.
func TestMultiPlaneDeterministic(t *testing.T) {
	geom := Params{Heights: 4, Angles: 4}
	for _, engine := range []string{"fast", "cycle"} {
		run := func() (Stats, []Packet) {
			k := sim.NewKernel()
			rng := sim.NewRNG(11)
			fabrics := make([]Fabric, 2)
			for i := range fabrics {
				if engine == "cycle" {
					fabrics[i] = NewEngine(k, geom, DefaultCycleTime)
					_ = rng.Split() // keep RNG consumption aligned across engines
				} else {
					fabrics[i] = NewFastModel(k, geom, DefaultCycleTime, rng.Split())
				}
			}
			m := NewMultiPlane(fabrics, PlaneRR)
			var seq []Packet
			m.OnDeliver(func(pkt Packet) { seq = append(seq, pkt) })
			trng := sim.NewRNG(23)
			for i := 0; i < 800; i++ {
				m.Inject(Packet{Src: trng.Intn(geom.Ports()), Dst: trng.Intn(geom.Ports()),
					Header: uint64(i)})
			}
			k.Run()
			return m.FabricStats(), seq
		}
		aSt, aSeq := run()
		bSt, bSeq := run()
		if aSt != bSt {
			t.Errorf("%s: stats diverge across identical runs", engine)
		}
		if len(aSeq) != len(bSeq) {
			t.Fatalf("%s: sequence lengths diverge: %d vs %d", engine, len(aSeq), len(bSeq))
		}
		for i := range aSeq {
			if aSeq[i] != bSeq[i] {
				t.Fatalf("%s: delivery %d diverges: %+v vs %+v", engine, i, aSeq[i], bSeq[i])
			}
		}
		if aSt.Delivered != 800 {
			t.Errorf("%s: delivered %d of 800", engine, aSt.Delivered)
		}
	}
}
