package dvswitch

import "repro/internal/obs/attr"

// SetHeat attaches (or with nil detaches) the attribution layer's
// cylinder×angle deflection census. Attaching disables the hand-inlined
// clean move loops (see cleanPath) so every deflection is counted; routing
// decisions are unchanged, only nanoseconds differ.
func (c *Core) SetHeat(h *attr.Heat) { c.heat = h }

// SetHeat attaches the deflection census to the kernel-coupled engine.
func (e *Engine) SetHeat(h *attr.Heat) { e.core.SetHeat(h) }

// SetAttr attaches (or with nil detaches) the attribution tracer to the
// analytic model. The model stamps traced packets at Inject time: entry and
// delivery are fully determined when Inject returns, so the fabric stage is
// closed immediately rather than at the delivery event.
func (m *FastModel) SetAttr(t *attr.Tracer) { m.attr = t }
