package dvswitch

import (
	"fmt"

	"repro/internal/obs"
)

// SwitchObs bundles the fabric's observability instruments: per-event
// counters mirroring Stats plus a latency histogram with the same log2
// buckets as Stats.LatHist. It is built from an obs.Registry by SetObs; a
// nil SwitchObs (observability disabled) costs one pointer test per hook.
type SwitchObs struct {
	Injected     *obs.Counter
	Delivered    *obs.Counter
	Dropped      *obs.Counter
	Deflected    *obs.Counter   // total deflection-path traversals
	DeflectByCyl []*obs.Counter // per-cylinder split (cycle-accurate Core only)
	Latency      *obs.Histogram // inject→eject latency, cycles
}

// newSwitchObs registers the fabric instruments. cylinders > 0 additionally
// creates the per-cylinder deflection split (only the cycle-accurate Core
// can attribute deflections to a cylinder; FastModel passes 0).
func newSwitchObs(r *obs.Registry, cylinders int) *SwitchObs {
	if r == nil {
		return nil
	}
	o := &SwitchObs{
		Injected:  r.Counter("switch_injected_total"),
		Delivered: r.Counter("switch_delivered_total"),
		Dropped:   r.Counter("switch_dropped_total"),
		Deflected: r.Counter("switch_deflected_total"),
		Latency:   r.Histogram("switch_latency_cycles"),
	}
	for cl := 0; cl < cylinders; cl++ {
		o.DeflectByCyl = append(o.DeflectByCyl,
			r.Counter(fmt.Sprintf("switch_deflected_cyl%d_total", cl)))
	}
	return o
}

// SetObs attaches (or with r == nil detaches) observability instruments to
// the cycle-accurate core. Safe to call between runs; counters accumulate
// across the core's lifetime from the moment they are attached.
func (c *Core) SetObs(r *obs.Registry) {
	if r == nil {
		c.obs = nil
		return
	}
	c.obs = newSwitchObs(r, c.p.Cylinders())
}

// InFlight returns the number of packets currently inside the fabric.
func (c *Core) InFlight() int { return c.flying }

// QueuedPackets returns the number of packets waiting in injection queues.
func (c *Core) QueuedPackets() int { return c.queued }

// SetObs attaches observability instruments to the kernel-coupled engine.
func (e *Engine) SetObs(r *obs.Registry) { e.core.SetObs(r) }

// SetObs attaches observability instruments to the analytic model. The
// per-cylinder deflection split is not available here: the model draws a
// total deflection count per packet without attributing it to a cylinder.
func (m *FastModel) SetObs(r *obs.Registry) {
	if r == nil {
		m.obs = nil
		return
	}
	m.obs = newSwitchObs(r, 0)
}

// Outstanding returns the number of packets injected but not yet delivered
// or dropped — the model's equivalent of Core fabric occupancy.
func (m *FastModel) Outstanding() int64 {
	return m.st.Injected - m.st.Delivered - m.st.Dropped
}
