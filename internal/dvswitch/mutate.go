package dvswitch

// Mutation selects a deliberate, well-understood defect to plant in the
// switch core. Mutations exist solely to validate the invariant layer
// (internal/check): a checker that cannot catch a planted defect cannot be
// trusted to catch an accidental one. Production code never sets a mutation;
// the zero value is defect-free and costs one integer test at each seam.
type Mutation uint32

const (
	// MutDropDeflectSignal suppresses the same-cylinder contention signal,
	// so a descending packet can land on a node a deflecting packet also
	// claims; the overwritten packet leaks from the occupancy grid.
	MutDropDeflectSignal Mutation = 1 << iota
	// MutBitOffByOne makes the descend decision resolve the wrong height
	// bit (cylinder index off by one), violating the resolved-prefix
	// property self-routing rests on. No-op when the switch has a single
	// resolving cylinder (Heights == 2).
	MutBitOffByOne
	// MutSkipDropCount loses fault-dropped packets without counting them in
	// Stats.Dropped, breaking per-cycle packet conservation.
	MutSkipDropCount
	// MutDoubleDeliver invokes the Deliver callback twice per ejection,
	// duplicating every packet at the fabric boundary.
	MutDoubleDeliver
	// MutStickyOutputRing keeps packets circling the output ring forever
	// instead of ejecting at the destination angle (a livelock).
	MutStickyOutputRing
)

// SetMutation plants (or with 0 clears) deliberate defects in the core.
// Testing only; see Mutation.
func (c *Core) SetMutation(m Mutation) { c.mut = m }
