package comm_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/sim"
)

func TestNetStrings(t *testing.T) {
	if comm.DV.String() != "Data Vortex" || comm.IB.String() != "Infiniband" {
		t.Fatalf("paper labels wrong: %q / %q", comm.DV, comm.IB)
	}
	for _, tc := range []struct {
		in   string
		want comm.Net
	}{{"dv", comm.DV}, {"Data Vortex", comm.DV}, {"ib", comm.IB}, {"mpi", comm.IB}} {
		got, err := comm.ParseNet(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseNet(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := comm.ParseNet("token-ring"); err == nil {
		t.Error("ParseNet accepted an unknown network")
	}
}

func TestNetStacks(t *testing.T) {
	if comm.DV.Stacks() != cluster.StackDV || comm.IB.Stacks() != cluster.StackIB {
		t.Fatal("Net→Stack mapping wrong")
	}
}

// blocksFrom builds a deterministic ragged all-to-all payload, including
// empty and non-word-aligned blocks.
func blocksFrom(rank, size int) [][]byte {
	blocks := make([][]byte, size)
	for d := range blocks {
		n := (rank*7 + d*3) % 21 // 0..20 bytes, hits 0 and non-multiples of 8
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rank*31 + d*17 + i)
		}
		blocks[d] = b
	}
	return blocks
}

// TestAlltoallBothBackends runs the same ragged exchange over both
// backends and checks each receives exactly what every peer addressed to
// it — the backend-neutral contract.
func TestAlltoallBothBackends(t *testing.T) {
	const nodes = 5
	for _, net := range comm.Nets() {
		net := net
		t.Run(net.String(), func(t *testing.T) {
			cfg := cluster.DefaultConfig(nodes)
			cfg.Stacks = net.Stacks()
			bad := 0
			cluster.Run(cfg, func(n *cluster.Node) {
				be := comm.New(net, n)
				// Two rounds: the second reuses (and on DV re-arms) the
				// exchange state.
				for round := 0; round < 2; round++ {
					got := be.Alltoall(blocksFrom(be.Rank(), be.Size()))
					for src := 0; src < be.Size(); src++ {
						want := blocksFrom(src, be.Size())[be.Rank()]
						if fmt.Sprint(got[src]) != fmt.Sprint(want) {
							bad++
						}
					}
				}
			})
			if bad != 0 {
				t.Fatalf("%d mismatched blocks", bad)
			}
		})
	}
}

// TestOneSidedOps exercises the Data Vortex one-sided path and the IB
// backend's unsupported reports.
func TestOneSidedOps(t *testing.T) {
	cfg := cluster.DefaultConfig(2)
	cfg.Stacks = cluster.StackDV
	var fifoGot uint64
	cluster.Run(cfg, func(n *cluster.Node) {
		be := comm.New(comm.DV, n)
		e := be.Endpoint()
		slot := e.Alloc(1)
		gc := e.AllocGC()
		e.ArmGC(gc, 1)
		be.Barrier()
		peer := 1 - be.Rank()
		if err := be.Put(comm.DMACached, peer, slot, gc, []uint64{uint64(10 + be.Rank())}); err != nil {
			t.Errorf("Put: %v", err)
		}
		e.WaitGC(gc, sim.Forever)
		if got := e.Read(slot, 1)[0]; got != uint64(10+peer) {
			t.Errorf("rank %d read %d", be.Rank(), got)
		}
		be.Barrier()
		if err := be.Scatter(comm.PIOCached, []comm.Word{
			{Dst: peer, Op: comm.OpFIFO, GC: comm.NoGC, Val: 77}}); err != nil {
			t.Errorf("Scatter: %v", err)
		}
		if w, ok := be.Drain(sim.Forever); ok && be.Rank() == 0 {
			fifoGot = w
		}
		be.Barrier()
	})
	if fifoGot != 77 {
		t.Fatalf("FIFO drain got %d", fifoGot)
	}

	cfg = cluster.DefaultConfig(2)
	cfg.Stacks = cluster.StackIB
	cluster.Run(cfg, func(n *cluster.Node) {
		be := comm.New(comm.IB, n)
		if err := be.Scatter(comm.DMACached, nil); err != comm.ErrUnsupported {
			t.Errorf("IB Scatter err = %v", err)
		}
		if err := be.Put(comm.DMACached, 0, 0, comm.NoGC, nil); err != comm.ErrUnsupported {
			t.Errorf("IB Put err = %v", err)
		}
		if _, ok := be.TryDrain(); ok {
			t.Error("IB TryDrain reported a word")
		}
		if be.Endpoint() != nil || be.MPI() == nil {
			t.Error("IB capability accessors wrong")
		}
		if err := be.ReliableBarrier(); err != nil {
			t.Errorf("IB ReliableBarrier: %v", err)
		}
	})
}
