// Data Vortex backend: thin forwarding onto the §III API endpoint for the
// native operations, plus an all-to-all built from counted one-sided
// writes — the one collective the fabric does not provide natively.

package comm

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dv"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func init() {
	Register(DV, func(n *cluster.Node) Backend {
		if n.DV == nil {
			panic("comm: node has no Data Vortex endpoint (StackDV not enabled)")
		}
		return &dvBackend{e: n.DV}
	})
}

// dvBackend drives one node's Data Vortex rail-0 endpoint.
type dvBackend struct {
	e *dv.Endpoint

	// All-to-all exchange state, allocated collectively on first use.
	a2aInit bool
	a2aLen  uint32 // P incoming block lengths (bytes), indexed by source
	a2aMax  uint32 // P per-source capacity proposals (words)
	a2aGC   [2]int // control / payload counters
	a2aBuf  uint32 // P rows of a2aCap words each
	a2aCap  int    // payload row capacity in words
}

func (b *dvBackend) Net() Net  { return DV }
func (b *dvBackend) Rank() int { return b.e.Rank() }
func (b *dvBackend) Size() int { return b.e.Size() }

func (b *dvBackend) Barrier()               { b.e.Barrier() }
func (b *dvBackend) ReliableBarrier() error { return b.e.ReliableBarrier() }

func (b *dvBackend) Put(mode SendMode, dst int, addr uint32, gc int, vals []uint64) error {
	b.e.Put(mode, dst, addr, gc, vals)
	return nil
}

func (b *dvBackend) Scatter(mode SendMode, words []Word) error {
	b.e.Scatter(mode, words)
	return nil
}

func (b *dvBackend) ReliableScatter(words []Word) error { return b.e.ReliableScatter(words) }

func (b *dvBackend) Drain(timeout sim.Time) (uint64, bool) { return b.e.PopFIFO(timeout) }
func (b *dvBackend) TryDrain() (uint64, bool)              { return b.e.TryPopFIFO() }

func (b *dvBackend) Endpoint() *dv.Endpoint { return b.e }
func (b *dvBackend) MPI() *mpi.Comm         { return nil }

// Alltoall emulates the byte-block exchange with counted writes into a
// symmetric region: a control round announces block lengths and agrees on
// a per-source row capacity (the global maximum, so every node's
// allocation sequence stays symmetric), then payload words land directly
// in the receivers' rows. Capacity grows monotonically; the region is
// reused across calls.
func (b *dvBackend) Alltoall(blocks [][]byte) [][]byte {
	e := b.e
	p := e.Size()
	if len(blocks) != p {
		panic(fmt.Sprintf("comm: Alltoall got %d blocks for %d nodes", len(blocks), p))
	}
	out := make([][]byte, p)
	out[e.Rank()] = append([]byte(nil), blocks[e.Rank()]...)
	if p == 1 {
		return out
	}
	if !b.a2aInit {
		// First call: every node allocates the control state in lockstep.
		b.a2aInit = true
		b.a2aLen = e.Alloc(p)
		b.a2aMax = e.Alloc(p)
		b.a2aGC[0] = e.AllocGC()
		b.a2aGC[1] = e.AllocGC()
	}
	localMax := 0
	for _, blk := range blocks {
		if w := wordsFor(len(blk)); w > localMax {
			localMax = w
		}
	}
	// Control round: publish my block lengths and capacity proposal.
	e.ArmGC(b.a2aGC[0], int64(2*(p-1)))
	e.Barrier() // every control counter armed
	ctl := make([]Word, 0, 2*(p-1))
	for d := 0; d < p; d++ {
		if d == e.Rank() {
			continue
		}
		ctl = append(ctl,
			Word{Dst: d, Op: OpWrite, GC: b.a2aGC[0], Addr: b.a2aLen + uint32(e.Rank()), Val: uint64(len(blocks[d]))},
			Word{Dst: d, Op: OpWrite, GC: b.a2aGC[0], Addr: b.a2aMax + uint32(e.Rank()), Val: uint64(localMax)})
	}
	e.Scatter(PIOCached, ctl)
	e.WaitGC(b.a2aGC[0], sim.Forever)
	lens := e.Read(b.a2aLen, p)
	rowCap := localMax
	for src, w := range e.Read(b.a2aMax, p) {
		if src != e.Rank() && int(w) > rowCap {
			rowCap = int(w)
		}
	}
	if rowCap > b.a2aCap {
		// Global maximum, so every node grows identically and the old
		// region is abandoned symmetrically.
		b.a2aBuf = e.Alloc(p * rowCap)
		b.a2aCap = rowCap
	}
	expected := int64(0)
	for src := 0; src < p; src++ {
		if src != e.Rank() {
			expected += int64(wordsFor(int(lens[src])))
		}
	}
	// Payload round.
	e.ArmGC(b.a2aGC[1], expected)
	e.Barrier() // every payload counter armed, capacities agreed
	var words []Word
	for d := 0; d < p; d++ {
		if d == e.Rank() || len(blocks[d]) == 0 {
			continue
		}
		row := b.a2aBuf + uint32(e.Rank()*b.a2aCap)
		for i, v := range packWords(blocks[d]) {
			words = append(words, Word{Dst: d, Op: OpWrite, GC: b.a2aGC[1], Addr: row + uint32(i), Val: v})
		}
	}
	e.Scatter(DMACached, words)
	e.WaitGC(b.a2aGC[1], sim.Forever)
	for src := 0; src < p; src++ {
		if src == e.Rank() {
			continue
		}
		n := int(lens[src])
		if n == 0 {
			out[src] = []byte{}
			continue
		}
		raw := e.Read(b.a2aBuf+uint32(src*b.a2aCap), wordsFor(n))
		out[src] = unpackWords(raw, n)
	}
	e.Barrier() // reads done: rows may be overwritten by the next call
	return out
}

// wordsFor returns the 8-byte words covering n payload bytes.
func wordsFor(n int) int { return (n + 7) / 8 }

// packWords encodes a byte block little-endian into whole words (the last
// word zero-padded).
func packWords(b []byte) []uint64 {
	w := make([]uint64, wordsFor(len(b)))
	for i, v := range b {
		w[i/8] |= uint64(v) << (8 * uint(i%8))
	}
	return w
}

// unpackWords decodes n bytes from a little-endian word row.
func unpackWords(w []uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(w[i/8] >> (8 * uint(i%8)))
	}
	return b
}
