// InfiniBand/MPI backend: collectives and barriers forward to the MPI
// communicator; the one-sided fine-grained operations have no substrate in
// the two-sided MPI model and report ErrUnsupported.

package comm

import (
	"repro/internal/cluster"
	"repro/internal/dv"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func init() {
	Register(IB, func(n *cluster.Node) Backend {
		if n.MPI == nil {
			panic("comm: node has no MPI communicator (StackIB not enabled)")
		}
		return &ibBackend{c: n.MPI}
	})
}

// ibBackend drives one node's MPI communicator over the fat tree.
type ibBackend struct {
	c *mpi.Comm
}

func (b *ibBackend) Net() Net  { return IB }
func (b *ibBackend) Rank() int { return b.c.Rank() }
func (b *ibBackend) Size() int { return b.c.Size() }

func (b *ibBackend) Barrier() { b.c.Barrier() }

// ReliableBarrier degrades to MPI_Barrier: the MPI transport is modelled
// lossless end-to-end (link flaps stall, they do not drop).
func (b *ibBackend) ReliableBarrier() error {
	b.c.Barrier()
	return nil
}

func (b *ibBackend) Alltoall(blocks [][]byte) [][]byte { return b.c.Alltoall(blocks) }

func (b *ibBackend) Put(SendMode, int, uint32, int, []uint64) error { return ErrUnsupported }
func (b *ibBackend) Scatter(SendMode, []Word) error                 { return ErrUnsupported }
func (b *ibBackend) ReliableScatter([]Word) error                   { return ErrUnsupported }
func (b *ibBackend) Drain(sim.Time) (uint64, bool)                  { return 0, false }
func (b *ibBackend) TryDrain() (uint64, bool)                       { return 0, false }

func (b *ibBackend) Endpoint() *dv.Endpoint { return nil }
func (b *ibBackend) MPI() *mpi.Comm         { return b.c }
