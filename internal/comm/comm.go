// Package comm is the backend-neutral transport layer of the reproduction:
// one Net enum naming the interconnects the paper compares, one Backend
// interface carrying the transport operations every workload needs
// (put/scatter/all-to-all/barrier/drain plus their reliable variants), and
// a registry holding one Backend implementation per fabric — Data Vortex
// (wrapping internal/dv and internal/vic, over either switch engine) and
// InfiniBand (wrapping internal/mpi and internal/ib).
//
// Before this layer existed every package under internal/apps re-declared
// its own Net enum and re-wired its own cluster; now an app names a
// comm.Net, receives a comm.Backend from the apprt harness, and adding a
// third interconnect means one new Backend registration — not eleven app
// edits.
package comm

import (
	"fmt"

	"repro/internal/cluster"
)

// Net selects the network under test — the comparison axis of the whole
// paper. It replaces the private Net enums formerly duplicated across every
// app package.
type Net int

const (
	// DV is the Data Vortex fabric driven through the paper's §III API.
	DV Net = iota
	// IB is MPI over the FDR InfiniBand fat tree.
	IB
)

// String names the network as the paper's figures label it.
func (n Net) String() string {
	if n == DV {
		return "Data Vortex"
	}
	return "Infiniband"
}

// Stacks maps the network to the cluster stack(s) a run must instantiate.
func (n Net) Stacks() cluster.Stack {
	if n == DV {
		return cluster.StackDV
	}
	return cluster.StackIB
}

// Nets lists the registered networks in definition order.
func Nets() []Net { return []Net{DV, IB} }

// ParseNet maps a command-line spelling ("dv", "ib", or a paper label) to
// its Net.
func ParseNet(s string) (Net, error) {
	switch s {
	case "dv", "DV", "datavortex", "Data Vortex":
		return DV, nil
	case "ib", "IB", "infiniband", "Infiniband", "mpi":
		return IB, nil
	}
	return 0, fmt.Errorf("comm: unknown network %q (want dv or ib)", s)
}
