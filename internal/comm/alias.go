// Wire-format and collective-helper aliases. Workload kernels describe
// fine-grained Data Vortex traffic with these types and pack MPI payloads
// with these helpers; routing everything through comm keeps the app
// packages free of direct internal/vic and internal/mpi imports (enforced
// by a build check), so a fabric-layer change never fans out into eleven
// app edits.

package comm

import (
	"repro/internal/mpi"
	"repro/internal/vic"
)

// Word is one fine-grained network transaction: destination node, command,
// group counter, DV Memory address, and the 8-byte payload.
type Word = vic.Word

// Op is the packet command carried in a Word.
type Op = vic.Op

// Packet commands (see vic.Op for the wire semantics).
const (
	// OpWrite stores the payload at a DV Memory address.
	OpWrite = vic.OpWrite
	// OpFIFO pushes the payload onto the destination's surprise FIFO.
	OpFIFO = vic.OpFIFO
	// OpSetGC sets a destination group counter to the payload value.
	OpSetGC = vic.OpSetGC
	// OpDecGC subtracts the payload value from a destination group counter.
	OpDecGC = vic.OpDecGC
	// OpQuery reads a DV Memory address and returns the value to the sender.
	OpQuery = vic.OpQuery
)

// NoGC marks a transaction that references no group counter.
const NoGC = vic.NoGC

// SendMode selects the host→network path of Figure 3.
type SendMode = vic.SendMode

// Host→network paths (see vic.SendMode for the cost model).
const (
	// PIO writes header+payload across the PCIe lane.
	PIO = vic.PIO
	// PIOCached writes payloads only; headers were pre-cached.
	PIOCached = vic.PIOCached
	// DMACached moves payloads with the DMA engine, headers pre-cached.
	DMACached = vic.DMACached
)

// DMAProgram is a persistent staged scatter (see vic.DMAProgram).
type DMAProgram = vic.DMAProgram

// ReadProgram is a persistent staged DMA read (see vic.ReadProgram).
type ReadProgram = vic.ReadProgram

// EncodeHeader packs routing and command fields into a header word (used
// by query-reply kernels that stage reply headers themselves).
func EncodeHeader(dstVIC int, op Op, gc int, addr uint32) uint64 {
	return vic.EncodeHeader(dstVIC, op, gc, addr)
}

// Request is an outstanding non-blocking MPI operation.
type Request = mpi.Request

// ReduceOp combines reduction operands element-wise.
type ReduceOp = mpi.ReduceOp

// Reduction operators for Comm.Reduce/Allreduce.
var (
	// Sum adds operands element-wise.
	Sum = mpi.Sum
	// Max keeps the element-wise maximum.
	Max = mpi.Max
	// Min keeps the element-wise minimum.
	Min = mpi.Min
)

// AnySource matches any sender in a receive.
const AnySource = mpi.AnySource

// Uint64sToBytes encodes words little-endian for byte-granular transports.
func Uint64sToBytes(v []uint64) []byte { return mpi.Uint64sToBytes(v) }

// BytesToUint64s decodes a little-endian word payload.
func BytesToUint64s(b []byte) []uint64 { return mpi.BytesToUint64s(b) }

// Float64sToBytes encodes float64s little-endian.
func Float64sToBytes(v []float64) []byte { return mpi.Float64sToBytes(v) }

// BytesToFloat64s decodes a little-endian float64 payload.
func BytesToFloat64s(b []byte) []float64 { return mpi.BytesToFloat64s(b) }
