// The Backend interface and its registry. cluster.Run instantiates the
// fabrics; comm.New wraps one node's endpoints in the Backend registered
// for the requested Net. Registration happens in this package's init
// functions (dv.go, ib.go); an out-of-tree fabric would add one more
// Register call.

package comm

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dv"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// ErrUnsupported reports a transport operation the backend's fabric cannot
// express (e.g. one-sided fine-grained puts on the two-sided MPI stack).
var ErrUnsupported = errors.New("comm: operation not supported by this backend")

// Backend is one node's view of a network under test: the transport
// operations shared by every workload, plus escape hatches to the
// fabric-specific programming models for kernels that exploit them (the
// paper's restructured Data Vortex variants do, by design).
//
// Universal operations — Barrier, ReliableBarrier, Alltoall — work on every
// backend. One-sided word traffic (Put, Scatter, ReliableScatter, Drain)
// is native on Data Vortex and returns ErrUnsupported on InfiniBand, whose
// two-sided MPI model has no remote-memory substrate to land it in.
type Backend interface {
	// Net identifies the fabric.
	Net() Net
	// Rank is this node's id in the job.
	Rank() int
	// Size is the number of nodes in the job.
	Size() int

	// Barrier blocks until every node has entered it.
	Barrier()
	// ReliableBarrier is Barrier over the loss-tolerant delivery layer; on
	// fabrics without a reliable layer it degrades to the plain barrier.
	ReliableBarrier() error
	// Alltoall exchanges one byte block with every node (blocks[i] goes to
	// node i; the result holds one block from every node, own block
	// included). Native on MPI; emulated on Data Vortex with counted
	// one-sided writes into a symmetric exchange region.
	Alltoall(blocks [][]byte) [][]byte

	// Put writes vals into dst's DV Memory at addr, decrementing group
	// counter gc there per word (NoGC: none).
	Put(mode SendMode, dst int, addr uint32, gc int, vals []uint64) error
	// Scatter issues a batch of fine-grained transactions in one transfer —
	// the source-side aggregation the paper's restructured apps rely on.
	Scatter(mode SendMode, words []Word) error
	// ReliableScatter is Scatter through the retransmitting delivery layer.
	ReliableScatter(words []Word) error
	// Drain pops one word from the node's unscheduled-arrival (surprise
	// FIFO) queue, blocking up to timeout.
	Drain(timeout sim.Time) (uint64, bool)
	// TryDrain pops one unscheduled word without blocking.
	TryDrain() (uint64, bool)

	// Endpoint exposes the Data Vortex API endpoint (rail 0), or nil when
	// the backend is not Data Vortex.
	Endpoint() *dv.Endpoint
	// MPI exposes the MPI communicator, or nil when the backend is not
	// InfiniBand.
	MPI() *mpi.Comm
}

// Factory builds one node's Backend from its cluster endpoints.
type Factory func(n *cluster.Node) Backend

var factories = map[Net]Factory{}

// Register installs the Backend factory for a network. Later registrations
// for the same Net replace earlier ones (tests substitute instrumented
// backends this way).
func Register(net Net, f Factory) { factories[net] = f }

// New wraps node n's endpoints in the Backend registered for net. It
// panics when no backend is registered or the node lacks the fabric —
// both are harness wiring bugs, not runtime conditions.
func New(net Net, n *cluster.Node) Backend {
	f, ok := factories[net]
	if !ok {
		panic(fmt.Sprintf("comm: no backend registered for %v", net))
	}
	return f(n)
}
