package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/bench"
)

func lineChart() *Chart {
	return &Chart{
		Title: "test", XLabel: "nodes", YLabel: "rate",
		Series: []Series{
			{Name: "a", X: []float64{2, 4, 8}, Y: []float64{1, 2, 4}},
			{Name: "b", X: []float64{2, 4, 8}, Y: []float64{1, 1.5, 2}},
		},
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := lineChart().RenderSVG(&buf, 640, 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, out)
		}
	}
	if c := strings.Count(out, "<polyline"); c != 2 {
		t.Fatalf("expected 2 polylines, got %d", c)
	}
	for _, want := range []string{"nodes", "rate", "test", "<circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
}

func TestRenderBars(t *testing.T) {
	c := lineChart()
	c.Bars = true
	c.XTickLabels = []string{"x", "y", "z"}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf, 640, 400); err != nil {
		t.Fatal(err)
	}
	// 2 series × 3 positions = 6 bars (plus the background rect and legend
	// swatches: 1 + 2).
	if got := strings.Count(buf.String(), "<rect"); got != 6+3 {
		t.Fatalf("expected 9 rects, got %d", got)
	}
}

func TestLogXMonotonic(t *testing.T) {
	c := &Chart{
		Title: "log", LogX: true,
		Series: []Series{{Name: "s", X: []float64{1, 4, 16, 64}, Y: []float64{1, 2, 3, 4}}},
	}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf, 640, 400); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).RenderSVG(&buf, 100, 100); err == nil {
		t.Fatal("expected error")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 4 || ticks[0] != 0 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("non-monotonic ticks: %v", ticks)
		}
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"415.1", 415.1, true},
		{"1.21x", 1.21, true},
		{"97.3%", 97.3, true},
		{"2.128ms", 2128, true},
		{"971.545us", 971.545, true},
		{"33.50", 33.5, true},
		{"PASS", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseCell(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseCell(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseCell(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestFromTableLineFigure(t *testing.T) {
	tb := &bench.Table{ID: "fig6a", Title: "GUPS per PE",
		Columns: []string{"nodes", "Data Vortex", "Infiniband"}}
	tb.AddRow("4", "35.95", "31.16")
	tb.AddRow("32", "33.50", "13.75")
	c, ok := FromTable(tb)
	if !ok {
		t.Fatal("figure not plottable")
	}
	if len(c.Series) != 2 || c.Bars {
		t.Fatalf("chart: %+v", c)
	}
	if c.Series[1].Y[1] != 13.75 {
		t.Fatalf("series data: %+v", c.Series[1])
	}
}

func TestFromTableCategoricalBars(t *testing.T) {
	tb := &bench.Table{ID: "fig9", Title: "speedup",
		Columns: []string{"application", "DV time", "IB time", "speedup"}}
	tb.AddRow("SNAP", "791us", "957us", "1.21x")
	tb.AddRow("Heat", "36.9us", "91.9us", "2.49x")
	c, ok := FromTable(tb)
	if !ok {
		t.Fatal("not plottable")
	}
	if !c.Bars || c.XTickLabels[0] != "SNAP" {
		t.Fatalf("chart: %+v", c)
	}
}

func TestFromTableRejectsNonNumeric(t *testing.T) {
	tb := &bench.Table{ID: "validate", Title: "checks",
		Columns: []string{"workload", "check", "result"}}
	tb.AddRow("GUPS", "tables equal", "PASS")
	tb.AddRow("FFT", "spectrum", "PASS")
	if _, ok := FromTable(tb); ok {
		t.Fatal("validation table should not be plottable")
	}
}
