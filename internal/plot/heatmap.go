package plot

import (
	"fmt"
	"io"
	"strings"
)

// Heatmap describes one matrix figure: Cells is row-major [Rows][Cols], and
// cell colour scales linearly from white (0) to deep blue (the matrix max).
// cmd/dvprof renders the switch's cylinder×angle deflection census with it.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	Rows   int
	Cols   int
	Cells  []float64
	// RowLabels / ColLabels override the default numeric axis labels.
	RowLabels []string
	ColLabels []string
}

// heatRamp interpolates the cell colour for t in [0, 1]: white to #08306b.
func heatRamp(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(a, b int) int { return a + int(t*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0xff, 0x08), lerp(0xff, 0x30), lerp(0xff, 0x6b))
}

// RenderSVG writes the heatmap as a complete SVG document. Output is
// byte-deterministic: fixed traversal order, fmt-only formatting.
func (h *Heatmap) RenderSVG(w io.Writer, width, height int) error {
	if h.Rows <= 0 || h.Cols <= 0 || len(h.Cells) != h.Rows*h.Cols {
		return fmt.Errorf("plot: heatmap %q has invalid shape %dx%d with %d cells",
			h.Title, h.Rows, h.Cols, len(h.Cells))
	}
	max := 0.0
	for _, v := range h.Cells {
		if v > max {
			max = v
		}
	}
	b := &strings.Builder{}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, xmlEscape(h.Title))

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	cw := float64(plotW) / float64(h.Cols)
	ch := float64(plotH) / float64(h.Rows)

	for r := 0; r < h.Rows; r++ {
		for c := 0; c < h.Cols; c++ {
			v := h.Cells[r*h.Cols+c]
			t := 0.0
			if max > 0 {
				t = v / max
			}
			fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"><title>%s</title></rect>`+"\n",
				float64(marginL)+float64(c)*cw, float64(marginT)+float64(r)*ch,
				cw, ch, heatRamp(t),
				xmlEscape(fmt.Sprintf("(%d, %d): %g", r, c, v)))
		}
	}

	// Axis labels: every row, and columns thinned to at most 16 ticks.
	for r := 0; r < h.Rows; r++ {
		lab := fmt.Sprintf("%d", r)
		if r < len(h.RowLabels) {
			lab = h.RowLabels[r]
		}
		fmt.Fprintf(b, `<text x="%d" y="%.2f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, float64(marginT)+(float64(r)+0.5)*ch+4, xmlEscape(lab))
	}
	colStep := 1
	for h.Cols/colStep > 16 {
		colStep *= 2
	}
	for c := 0; c < h.Cols; c += colStep {
		lab := fmt.Sprintf("%d", c)
		if c < len(h.ColLabels) {
			lab = h.ColLabels[c]
		}
		fmt.Fprintf(b, `<text x="%.2f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			float64(marginL)+(float64(c)+0.5)*cw, marginT+plotH+16, xmlEscape(lab))
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, xmlEscape(h.XLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(h.YLabel))

	// Colour-scale legend: min and max swatches.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="14" height="14" fill="%s" stroke="#999"/>`+"\n",
		width-marginR-120, 10, heatRamp(0))
	fmt.Fprintf(b, `<text x="%d" y="21" font-family="sans-serif" font-size="11">0</text>`+"\n",
		width-marginR-102)
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="14" height="14" fill="%s" stroke="#999"/>`+"\n",
		width-marginR-70, 10, heatRamp(1))
	fmt.Fprintf(b, `<text x="%d" y="21" font-family="sans-serif" font-size="11">%s</text>`+"\n",
		width-marginR-52, xmlEscape(formatTick(max)))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
