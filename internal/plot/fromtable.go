package plot

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bench"
)

// FromTable converts a bench table into a chart when the table has a
// plottable shape: a numeric (or categorical) first column and at least one
// numeric data column. It returns false for tables that are not figures
// (validation reports, trace summaries).
func FromTable(t *bench.Table) (*Chart, bool) {
	if len(t.Rows) < 2 || len(t.Columns) < 2 {
		return nil, false
	}
	// Summary/report tables are not figures.
	if t.ID == "fig5" || t.ID == "validate" {
		return nil, false
	}
	spec, ok := figureSpecs[t.ID]
	if !ok {
		spec = figureSpec{}
	}
	c := &Chart{
		Title:  fmt.Sprintf("%s: %s", t.ID, t.Title),
		XLabel: t.Columns[0],
		LogX:   spec.logX,
		Bars:   spec.bars,
	}
	// Parse the x column; categorical values become indices with labels.
	xs := make([]float64, len(t.Rows))
	categorical := false
	for i, row := range t.Rows {
		v, err := parseCell(row[0])
		if err != nil {
			categorical = true
			break
		}
		xs[i] = v
	}
	if categorical {
		c.Bars = true
		c.XTickLabels = make([]string, len(t.Rows))
		for i, row := range t.Rows {
			xs[i] = float64(i)
			c.XTickLabels[i] = row[0]
		}
	}
	// Data columns: any column whose every cell parses.
	dataCols := 0
	for col := 1; col < len(t.Columns); col++ {
		ys := make([]float64, 0, len(t.Rows))
		ok := true
		for _, row := range t.Rows {
			if col >= len(row) {
				ok = false
				break
			}
			v, err := parseCell(row[col])
			if err != nil {
				ok = false
				break
			}
			ys = append(ys, v)
		}
		if !ok {
			continue
		}
		c.Series = append(c.Series, Series{Name: t.Columns[col], X: xs, Y: ys})
		dataCols++
	}
	if dataCols == 0 {
		return nil, false
	}
	c.YLabel = spec.yLabel
	if c.YLabel == "" {
		c.YLabel = "value"
	}
	return c, true
}

// figureSpec carries per-figure presentation hints.
type figureSpec struct {
	logX   bool
	bars   bool
	yLabel string
}

var figureSpecs = map[string]figureSpec{
	"fig3a": {logX: true, yLabel: "GB/s"},
	"fig3b": {logX: true, yLabel: "% of peak"},
	"fig4":  {yLabel: "us per barrier"},
	"fig6a": {yLabel: "MUPS per PE"},
	"fig6b": {yLabel: "MUPS aggregate"},
	"fig7":  {yLabel: "GFLOPS"},
	"fig8":  {yLabel: "MTEPS"},
	"fig9":  {bars: true, yLabel: "speedup (x)"},
	"extB":  {yLabel: "cycles / fraction"},
	"extD":  {yLabel: "rate"},
}

// parseCell extracts the leading number from a table cell, tolerating the
// harness's unit suffixes ("1.21x", "97.3%", "415.1", "2.128ms", "971us").
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) {
		ch := s[end]
		if ch >= '0' && ch <= '9' || ch == '.' || ch == '-' || ch == '+' ||
			ch == 'e' && end > 0 && (s[end-1] >= '0' && s[end-1] <= '9') {
			end++
			continue
		}
		break
	}
	if end == 0 {
		return 0, fmt.Errorf("plot: cell %q is not numeric", s)
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, err
	}
	// Normalise time suffixes to microseconds for comparability.
	switch {
	case strings.HasSuffix(s, "ms"):
		v *= 1000
	case strings.HasSuffix(s, "ns"):
		v /= 1000
	case strings.HasSuffix(s, "s") && !strings.HasSuffix(s, "us") && !strings.HasSuffix(s, "ms") && !strings.HasSuffix(s, "ns"):
		v *= 1e6
	}
	return v, nil
}
