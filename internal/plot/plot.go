// Package plot renders the reproduction's figures as standalone SVG images
// using only the standard library: line charts for the scaling figures
// (bandwidth/latency/rate versus size or node count) and grouped bar charts
// for the speedup figure. cmd/dvplot drives it from dvbench's JSON output.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted line or bar group member.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX uses a log2 x axis (message-size sweeps).
	LogX bool
	// Bars renders grouped bars per x position instead of lines.
	Bars bool
	// XTickLabels overrides numeric x tick labels (categorical bars).
	XTickLabels []string
}

// palette holds the series colours (colour-blind-safe-ish).
var palette = []string{"#1b6ca8", "#d1495b", "#66a182", "#edae49", "#574ae2", "#8d6a9f"}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// RenderSVG writes the chart as a complete SVG document.
func (c *Chart) RenderSVG(w io.Writer, width, height int) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	b := &strings.Builder{}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, xmlEscape(c.Title))

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	xmin, xmax, ymin, ymax := c.bounds()
	xmap := func(x float64) float64 {
		if c.LogX {
			x = math.Log2(x)
		}
		lo, hi := xmin, xmax
		if c.LogX {
			lo, hi = math.Log2(xmin), math.Log2(xmax)
		}
		if hi == lo {
			return float64(marginL) + float64(plotW)/2
		}
		return float64(marginL) + (x-lo)/(hi-lo)*float64(plotW)
	}
	ymap := func(y float64) float64 {
		if ymax == ymin {
			return float64(marginT) + float64(plotH)/2
		}
		return float64(marginT+plotH) - (y-ymin)/(ymax-ymin)*float64(plotH)
	}

	// Axes.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)

	// Y ticks and gridlines.
	for _, tick := range niceTicks(ymin, ymax, 6) {
		y := ymap(tick)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, formatTick(tick))
	}
	// X ticks.
	xs := c.xPositions()
	for i, x := range xs {
		px := xmap(x)
		label := formatTick(x)
		if c.XTickLabels != nil && i < len(c.XTickLabels) {
			label = c.XTickLabels[i]
		}
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, marginT+plotH, px, marginT+plotH+4)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, marginT+plotH+18, xmlEscape(label))
	}
	// Axis labels.
	fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, xmlEscape(c.XLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(c.YLabel))

	if c.Bars {
		c.renderBars(b, xmap, ymap, plotW)
	} else {
		c.renderLines(b, xmap, ymap)
	}

	// Legend.
	lx := marginL + 10
	for i, s := range c.Series {
		ly := marginT + 8 + i*16
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="8" fill="%s"/>`+"\n",
			lx, ly, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+16, ly+8, xmlEscape(s.Name))
	}
	fmt.Fprintln(b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) renderLines(b *strings.Builder, xmap, ymap func(float64) float64) {
	for i, s := range c.Series {
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xmap(s.X[j]), ymap(s.Y[j])))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), palette[i%len(palette)])
		for j := range s.X {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xmap(s.X[j]), ymap(s.Y[j]), palette[i%len(palette)])
		}
	}
}

func (c *Chart) renderBars(b *strings.Builder, xmap, ymap func(float64) float64, plotW int) {
	xs := c.xPositions()
	if len(xs) == 0 {
		return
	}
	slot := float64(plotW) / float64(len(xs))
	group := slot * 0.7
	bar := group / float64(len(c.Series))
	y0 := ymap(math.Max(0, c.minY()))
	for i, s := range c.Series {
		for j := range s.X {
			cx := xmap(s.X[j])
			x := cx - group/2 + float64(i)*bar
			y := ymap(s.Y[j])
			h := y0 - y
			if h < 0 {
				y, h = y0, -h
			}
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, bar*0.9, h, palette[i%len(palette)])
		}
	}
}

// bounds computes the data extents (y always includes 0 for honest scaling).
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), 0
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
			ymin = math.Min(ymin, s.Y[i])
		}
	}
	if ymin > 0 {
		ymin = 0
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	return
}

func (c *Chart) minY() float64 {
	_, _, ymin, _ := c.bounds()
	return ymin
}

// xPositions returns the distinct x values in order of first appearance.
func (c *Chart) xPositions() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	return xs
}

// niceTicks returns up to n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		ticks = append(ticks, t)
	}
	return ticks
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
