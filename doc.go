// Package repro is a from-scratch Go reproduction of "Exploring DataVortex
// Systems for Irregular Applications" (Gioiosa et al., 2017): a
// deterministic discrete-event simulation of the paper's 32-node dual-fabric
// testbed (Data Vortex + FDR InfiniBand/MPI) and every workload of its
// evaluation. See README.md for usage, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results.
//
// This root package holds the repository-level benchmarks (one per paper
// figure; see bench_test.go) and the cross-engine integration tests.
package repro
